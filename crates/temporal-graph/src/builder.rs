//! Validating construction of [`TemporalGraph`]s.

use crate::graph::TemporalGraph;
use crate::lanes::LaneLayout;
use crate::types::{NodeId, TemporalEdge, Timestamp};
use crate::util::FxHashMap;

/// Incremental builder for [`TemporalGraph`].
///
/// Responsibilities:
/// * strips self-loops (they cannot participate in 2-/3-node motifs;
///   the count is reported via [`GraphBuilder::dropped_self_loops`]),
/// * stable-sorts edges by `(t, insertion order)` to establish the global
///   chronological total order,
/// * optionally compacts sparse external node ids to `0..n`
///   ([`GraphBuilder::compact_ids`]).
///
/// ```
/// use temporal_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(10, 20, 100);
/// b.add_edge(20, 10, 50);
/// b.add_edge(10, 10, 60); // self-loop: dropped
/// let g = b.compact_ids(true).build();
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edges()[0].t, 50); // sorted by time
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<TemporalEdge>,
    dropped_self_loops: usize,
    compact: bool,
    layout: LaneLayout,
    threads: usize,
}

impl GraphBuilder {
    /// New empty builder.
    #[must_use]
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// New builder with pre-allocated edge capacity.
    #[must_use]
    pub fn with_capacity(edges: usize) -> GraphBuilder {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            ..GraphBuilder::default()
        }
    }

    /// If `true`, remap node ids to a dense `0..n` range in order of first
    /// appearance. Default `false` (ids are taken literally and
    /// `num_nodes = max id + 1`).
    #[must_use]
    pub fn compact_ids(mut self, yes: bool) -> GraphBuilder {
        self.compact = yes;
        self
    }

    /// Timestamp-lane layout of the built graph (see [`LaneLayout`]).
    /// Default [`LaneLayout::Raw`]; [`LaneLayout::Compressed`] trades a
    /// small decode cost for a much smaller resident timestamp lane.
    /// Counts are bit-identical either way.
    #[must_use]
    pub fn lane_layout(mut self, layout: LaneLayout) -> GraphBuilder {
        self.layout = layout;
        self
    }

    /// Build the event lanes with up to `threads` worker threads
    /// (per-shard lane fills over disjoint node ranges, merged in node
    /// order). `0` or `1` builds sequentially. The result is
    /// bit-identical to the sequential build; the chronological sort
    /// itself stays sequential (it is stable and allocation-bound).
    #[must_use]
    pub fn build_threads(mut self, threads: usize) -> GraphBuilder {
        self.threads = threads;
        self
    }

    /// Append one edge. Self-loops are silently dropped (counted).
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, t: Timestamp) {
        self.push(TemporalEdge::new(src, dst, t));
    }

    /// Append one edge value.
    pub fn push(&mut self, e: TemporalEdge) {
        if e.is_self_loop() {
            self.dropped_self_loops += 1;
        } else {
            self.edges.push(e);
        }
    }

    /// Append many edges.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = TemporalEdge>) {
        for e in edges {
            self.push(e);
        }
    }

    /// Number of self-loop edges dropped so far.
    #[must_use]
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of (retained) edges added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if no edges retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalise into an immutable [`TemporalGraph`].
    #[must_use]
    pub fn build(self) -> TemporalGraph {
        let GraphBuilder {
            mut edges,
            compact,
            layout,
            threads,
            ..
        } = self;

        if compact {
            let mut remap: FxHashMap<NodeId, NodeId> = FxHashMap::default();
            for e in &mut edges {
                let next = remap.len() as NodeId;
                e.src = *remap.entry(e.src).or_insert(next);
                let next = remap.len() as NodeId;
                e.dst = *remap.entry(e.dst).or_insert(next);
            }
        }

        edges.sort_by_key(|e| e.t); // stable: input order breaks ties

        let num_nodes = edges
            .iter()
            .map(|e| e.src.max(e.dst) as usize + 1)
            .max()
            .unwrap_or(0);

        TemporalGraph::from_sorted_edges_with_threads(num_nodes, edges, threads.max(1))
            .into_lane_layout(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Dir;

    #[test]
    fn self_loops_are_dropped_and_counted() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 1, 3);
        assert_eq!(b.dropped_self_loops(), 2);
        assert_eq!(b.len(), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edges_sorted_stably_by_time() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 9);
        b.add_edge(1, 2, 3);
        b.add_edge(2, 3, 9); // ties with first edge; must stay after it
        let g = b.build();
        let ts: Vec<_> = g.edges().iter().map(|e| (e.t, e.src)).collect();
        assert_eq!(ts, vec![(3, 1), (9, 0), (9, 2)]);
    }

    #[test]
    fn compact_ids_renumbers_by_first_appearance() {
        let mut b = GraphBuilder::new().compact_ids(true);
        b.add_edge(1000, 5, 1);
        b.add_edge(5, 70, 2);
        let g = b.build();
        assert_eq!(g.num_nodes(), 3);
        // 1000 -> 0, 5 -> 1, 70 -> 2
        assert_eq!(g.edges()[0], TemporalEdge::new(0, 1, 1));
        assert_eq!(g.edges()[1], TemporalEdge::new(1, 2, 2));
    }

    #[test]
    fn non_compact_uses_max_id() {
        let mut b = GraphBuilder::new();
        b.add_edge(2, 7, 1);
        let g = b.build();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(7), 1);
    }

    #[test]
    fn with_capacity_and_extend() {
        let mut b = GraphBuilder::with_capacity(4);
        b.extend([
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 0, 2),
            TemporalEdge::new(2, 2, 3),
        ]);
        assert!(!b.is_empty());
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped_self_loops(), 1);
        let g = b.build();
        assert_eq!(g.node_events(0).dir(0), Dir::Out);
        assert_eq!(g.node_events(0).dir(1), Dir::In);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn lane_layout_and_threads_do_not_change_content() {
        let edges: Vec<TemporalEdge> = (0..300)
            .map(|i| TemporalEdge::new(i % 17, (i * 5 + 2) % 17, (i as i64 * 11) % 200))
            .collect();
        let base = {
            let mut b = GraphBuilder::new();
            b.extend(edges.clone());
            b.build()
        };
        for layout in [LaneLayout::Raw, LaneLayout::Compressed] {
            for threads in [1, 4] {
                let mut b = GraphBuilder::new()
                    .lane_layout(layout)
                    .build_threads(threads);
                b.extend(edges.clone());
                let g = b.build();
                assert_eq!(g.lane_layout(), layout);
                assert_eq!(
                    g.fingerprint(),
                    base.fingerprint(),
                    "layout={layout} threads={threads}"
                );
            }
        }
    }
}
