//! Graph statistics backing Table II and Fig. 9 of the paper.

use crate::graph::TemporalGraph;
use crate::types::Timestamp;

/// Summary statistics in the shape of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_nodes: usize,
    /// `|E|` (temporal edges, multi-edges counted).
    pub num_edges: usize,
    /// Earliest timestamp (0 for empty graphs).
    pub min_time: Timestamp,
    /// Latest timestamp (0 for empty graphs).
    pub max_time: Timestamp,
    /// `max_time - min_time` in raw units.
    pub time_span: Timestamp,
    /// Maximum total degree (`max_i d_i`).
    pub max_degree: usize,
    /// Mean total degree (`2|E| / |V|`).
    pub mean_degree: f64,
    /// Number of distinct connected node pairs.
    pub num_pairs: usize,
}

impl GraphStats {
    /// Compute statistics for `g`.
    #[must_use]
    pub fn compute(g: &TemporalGraph) -> GraphStats {
        let max_degree = g.node_ids().map(|u| g.degree(u)).max().unwrap_or(0);
        let mean_degree = if g.num_nodes() == 0 {
            0.0
        } else {
            2.0 * g.num_edges() as f64 / g.num_nodes() as f64
        };
        GraphStats {
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            min_time: g.min_time().unwrap_or(0),
            max_time: g.max_time().unwrap_or(0),
            time_span: g.time_span(),
            max_degree,
            mean_degree,
            num_pairs: g.pairs().num_pairs(),
        }
    }

    /// Time span in days, assuming timestamps are in seconds (the unit of
    /// all 16 paper datasets).
    #[must_use]
    pub fn time_span_days(&self) -> f64 {
        self.time_span as f64 / 86_400.0
    }
}

/// One bin of a logarithmically binned degree histogram (Fig. 9a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeBin {
    /// Inclusive lower degree bound of the bin.
    pub lo: usize,
    /// Exclusive upper degree bound of the bin.
    pub hi: usize,
    /// Number of nodes whose degree falls in `[lo, hi)`.
    pub count: usize,
}

/// Log2-binned degree histogram: bins `[1,2), [2,4), [4,8), …`.
/// Degree-0 nodes are reported in a leading `[0,1)` bin.
#[must_use]
pub fn degree_histogram(g: &TemporalGraph) -> Vec<DegreeBin> {
    let max_degree = g.node_ids().map(|u| g.degree(u)).max().unwrap_or(0);
    let num_bins = if max_degree == 0 {
        1
    } else {
        (usize::BITS - max_degree.leading_zeros()) as usize + 1
    };
    let mut bins = vec![0usize; num_bins];
    for u in g.node_ids() {
        let d = g.degree(u);
        let idx = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        bins[idx] += 1;
    }
    bins.into_iter()
        .enumerate()
        .map(|(i, count)| DegreeBin {
            lo: if i == 0 { 0 } else { 1 << (i - 1) },
            hi: 1 << i,
            count,
        })
        .collect()
}

/// The `k` largest node degrees in descending order (fewer if the graph
/// has fewer nodes).
#[must_use]
pub fn top_k_degrees(g: &TemporalGraph, k: usize) -> Vec<usize> {
    let mut degrees: Vec<usize> = g.node_ids().map(|u| g.degree(u)).collect();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    degrees.truncate(k);
    degrees
}

/// The paper's default for HARE's degree threshold `thrd`: "the minimum
/// value of degrees of top 20 nodes" (§V.F). Returns `usize::MAX` for an
/// empty graph (so no node is ever classified heavy).
#[must_use]
pub fn default_degree_threshold(g: &TemporalGraph, top_k: usize) -> usize {
    top_k_degrees(g, top_k)
        .last()
        .copied()
        .unwrap_or(usize::MAX)
}

/// Average number of events within a `delta` window starting at each event
/// — the paper's `d^δ` (used in the complexity analysis §IV.A.4). Exact,
/// O(2|E|) via a two-pointer sweep per node.
#[must_use]
pub fn mean_window_degree(g: &TemporalGraph, delta: Timestamp) -> f64 {
    let mut total = 0usize;
    let mut events = 0usize;
    for u in g.node_ids() {
        let ts = g.node_events(u).ts_lane();
        let mut j = 0;
        for i in 0..ts.len() {
            if j < i + 1 {
                j = i + 1;
            }
            let ti = ts.get(i);
            while j < ts.len() && ts.get(j) - ti <= delta {
                j += 1;
            }
            total += j - (i + 1);
            events += 1;
        }
    }
    if events == 0 {
        0.0
    } else {
        total as f64 / events as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TemporalEdge;

    fn star(center: u32, spokes: u32) -> TemporalGraph {
        let edges = (0..spokes)
            .map(|i| TemporalEdge::new(center, center + 1 + i, i as Timestamp))
            .collect();
        TemporalGraph::from_edges(edges)
    }

    #[test]
    fn stats_of_star() {
        let g = star(0, 10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 11);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.time_span, 9);
        assert_eq!(s.num_pairs, 10);
        assert!((s.mean_degree - 20.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = TemporalGraph::from_edges(vec![]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.time_span_days(), 0.0);
    }

    #[test]
    fn histogram_bins_cover_all_nodes() {
        let g = star(0, 10);
        let bins = degree_histogram(&g);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, g.num_nodes());
        // 10 spokes with degree 1 land in [1,2); hub in [8,16).
        assert_eq!(
            bins[1],
            DegreeBin {
                lo: 1,
                hi: 2,
                count: 10
            }
        );
        assert_eq!(bins.last().unwrap().count, 1);
    }

    #[test]
    fn histogram_handles_isolated_nodes() {
        let g = TemporalGraph::from_edges(vec![TemporalEdge::new(0, 5, 1)]);
        let bins = degree_histogram(&g);
        assert_eq!(bins[0].count, 4); // nodes 1..=4 isolated
    }

    #[test]
    fn top_k_and_threshold() {
        let g = star(0, 10);
        assert_eq!(top_k_degrees(&g, 3), vec![10, 1, 1]);
        assert_eq!(default_degree_threshold(&g, 3), 1);
        assert_eq!(default_degree_threshold(&g, 1), 10);
        let empty = TemporalGraph::from_edges(vec![]);
        assert_eq!(default_degree_threshold(&empty, 20), usize::MAX);
    }

    #[test]
    fn window_degree_counts_events_within_delta() {
        // Node 0 has events at t = 0,1,2: with delta=1 windows hold
        // {1}, {2}, {} successors -> mean over 6 events total.
        let g = TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(0, 2, 1),
            TemporalEdge::new(0, 3, 2),
        ]);
        // Per node: node0 events contribute 1+1+0; spokes contribute 0.
        let d = mean_window_degree(&g, 1);
        assert!((d - 2.0 / 6.0).abs() < 1e-12, "{d}");
        // Huge delta: node0 contributes 2+1+0.
        let d = mean_window_degree(&g, 1000);
        assert!((d - 3.0 / 6.0).abs() < 1e-12, "{d}");
    }
}
