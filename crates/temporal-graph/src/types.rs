//! Primitive types shared by every crate in the workspace.

use serde::{Deserialize, Serialize};

/// Dense node identifier. The builder guarantees `0..num_nodes`.
pub type NodeId = u32;

/// Edge timestamp in arbitrary integer units (the paper's datasets use
/// seconds since epoch). Signed so that subtraction (`t_j - t_i`) and
/// window arithmetic (`t_j - delta`) never underflow.
pub type Timestamp = i64;

/// Edge identifier. After [`crate::GraphBuilder::build`] this equals the
/// edge's rank in the global `(t, input_position)` order, which all
/// counting algorithms use as the chronological total order.
pub type EdgeId = u32;

/// Direction of an event relative to a reference node.
///
/// For an event in a node `u`'s sequence `S_u`, `Out` means the underlying
/// edge leaves `u` (`u -> other`) and `In` means it enters `u`
/// (`other -> u`). The paper writes these as `o` and `in`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Dir {
    /// Edge points away from the reference node (`o` in the paper).
    Out = 0,
    /// Edge points towards the reference node (`in` in the paper).
    In = 1,
}

impl Dir {
    /// The opposite direction.
    #[inline]
    #[must_use]
    pub const fn flip(self) -> Dir {
        match self {
            Dir::Out => Dir::In,
            Dir::In => Dir::Out,
        }
    }

    /// Index into `[_; 2]` counter arrays (`Out = 0`, `In = 1`).
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Dir::index`].
    ///
    /// # Panics
    /// Panics if `i > 1`.
    #[inline]
    #[must_use]
    pub const fn from_index(i: usize) -> Dir {
        match i {
            0 => Dir::Out,
            1 => Dir::In,
            _ => panic!("Dir::from_index: index must be 0 or 1"),
        }
    }

    /// Both directions, in index order. Convenient for exhaustive loops
    /// over counter cells.
    pub const BOTH: [Dir; 2] = [Dir::Out, Dir::In];
}

impl std::fmt::Display for Dir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dir::Out => write!(f, "o"),
            Dir::In => write!(f, "in"),
        }
    }
}

/// A directed, timestamped edge `(src, dst, t)` — Definition 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TemporalEdge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Timestamp.
    pub t: Timestamp,
}

impl TemporalEdge {
    /// Convenience constructor.
    #[inline]
    #[must_use]
    pub const fn new(src: NodeId, dst: NodeId, t: Timestamp) -> Self {
        TemporalEdge { src, dst, t }
    }

    /// `true` if `src == dst`. Self-loops cannot participate in any 2- or
    /// 3-node motif and are stripped by the builder.
    #[inline]
    #[must_use]
    pub const fn is_self_loop(&self) -> bool {
        self.src == self.dst
    }

    /// The unordered endpoint pair `(min, max)` keying the pair index.
    #[inline]
    #[must_use]
    pub const fn unordered_pair(&self) -> (NodeId, NodeId) {
        if self.src <= self.dst {
            (self.src, self.dst)
        } else {
            (self.dst, self.src)
        }
    }

    /// Direction of this edge as seen from `node`, which must be one of
    /// its endpoints.
    ///
    /// # Panics
    /// Panics in debug builds if `node` is not an endpoint.
    #[inline]
    #[must_use]
    pub fn dir_from(&self, node: NodeId) -> Dir {
        debug_assert!(node == self.src || node == self.dst);
        if node == self.src {
            Dir::Out
        } else {
            Dir::In
        }
    }
}

impl std::fmt::Display for TemporalEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({} -> {} @ {})", self.src, self.dst, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_flip_is_involution() {
        assert_eq!(Dir::Out.flip(), Dir::In);
        assert_eq!(Dir::In.flip(), Dir::Out);
        for d in Dir::BOTH {
            assert_eq!(d.flip().flip(), d);
        }
    }

    #[test]
    fn dir_index_roundtrip() {
        for d in Dir::BOTH {
            assert_eq!(Dir::from_index(d.index()), d);
        }
        assert_eq!(Dir::Out.index(), 0);
        assert_eq!(Dir::In.index(), 1);
    }

    #[test]
    fn dir_display_matches_paper_notation() {
        assert_eq!(Dir::Out.to_string(), "o");
        assert_eq!(Dir::In.to_string(), "in");
    }

    #[test]
    fn edge_self_loop_detection() {
        assert!(TemporalEdge::new(3, 3, 0).is_self_loop());
        assert!(!TemporalEdge::new(3, 4, 0).is_self_loop());
    }

    #[test]
    fn edge_unordered_pair_is_sorted() {
        assert_eq!(TemporalEdge::new(7, 2, 0).unordered_pair(), (2, 7));
        assert_eq!(TemporalEdge::new(2, 7, 0).unordered_pair(), (2, 7));
        assert_eq!(TemporalEdge::new(5, 5, 0).unordered_pair(), (5, 5));
    }

    #[test]
    fn edge_dir_from_endpoints() {
        let e = TemporalEdge::new(1, 2, 10);
        assert_eq!(e.dir_from(1), Dir::Out);
        assert_eq!(e.dir_from(2), Dir::In);
    }

    #[test]
    fn edge_display() {
        assert_eq!(TemporalEdge::new(1, 2, 10).to_string(), "(1 -> 2 @ 10)");
    }
}
