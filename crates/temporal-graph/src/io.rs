//! Loading and saving temporal graphs in the SNAP-style text format.
//!
//! The paper's 16 datasets ship as plain text, one edge per line:
//! `src dst timestamp`, whitespace- or comma-separated, with optional
//! comment lines. This module parses that shape tolerantly (extra trailing
//! columns ignored — e.g. the Bitcoin trust datasets carry a rating column
//! between the endpoints and the timestamp, selectable via
//! [`LoadOptions::timestamp_column`]).

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::graph::TemporalGraph;
use crate::types::{NodeId, Timestamp};
use crate::util::FxHashMap;

/// Error produced while loading a graph file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line could not be parsed. Carries the 1-based line number
    /// and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Options controlling text-format parsing.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Zero-based column of the timestamp field. Default 2
    /// (`src dst t ...`); the Bitcoin trust datasets use 3.
    pub timestamp_column: usize,
    /// Remap external node ids to dense `0..n` (default `true` — external
    /// ids in the public datasets are sparse).
    pub compact_ids: bool,
    /// Timestamps given as (possibly fractional) seconds; fractional parts
    /// are truncated. Default `false` (strict integer parse).
    pub allow_float_timestamps: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            timestamp_column: 2,
            compact_ids: true,
            allow_float_timestamps: false,
        }
    }
}

fn is_comment(line: &str) -> bool {
    matches!(line.trim_start().chars().next(), Some('#' | '%') | None)
}

fn split_fields(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| c.is_whitespace() || c == ',')
        .filter(|s| !s.is_empty())
}

/// Parse edges from any reader. See [`load_edges`] for the file-path
/// convenience wrapper.
pub fn read_edges<R: BufRead>(
    reader: R,
    opts: &LoadOptions,
) -> Result<Vec<(u64, u64, Timestamp)>, LoadError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let lineno = idx + 1;
        let fields: Vec<&str> = split_fields(&line).collect();
        if fields.len() < opts.timestamp_column + 1 || fields.len() < 3 {
            return Err(LoadError::Parse {
                line: lineno,
                message: format!(
                    "expected at least {} fields, found {}",
                    (opts.timestamp_column + 1).max(3),
                    fields.len()
                ),
            });
        }
        let parse_node = |s: &str| -> Result<u64, LoadError> {
            s.parse::<u64>().map_err(|e| LoadError::Parse {
                line: lineno,
                message: format!("bad node id {s:?}: {e}"),
            })
        };
        let src = parse_node(fields[0])?;
        let dst = parse_node(fields[1])?;
        let raw_t = fields[opts.timestamp_column];
        let t: Timestamp = if opts.allow_float_timestamps {
            raw_t
                .parse::<f64>()
                .map_err(|e| LoadError::Parse {
                    line: lineno,
                    message: format!("bad timestamp {raw_t:?}: {e}"),
                })?
                .trunc() as Timestamp
        } else {
            raw_t.parse::<Timestamp>().map_err(|e| LoadError::Parse {
                line: lineno,
                message: format!("bad timestamp {raw_t:?}: {e}"),
            })?
        };
        out.push((src, dst, t));
    }
    Ok(out)
}

/// Load raw `(src, dst, t)` triples from a text file.
pub fn load_edges(
    path: impl AsRef<Path>,
    opts: &LoadOptions,
) -> Result<Vec<(u64, u64, Timestamp)>, LoadError> {
    let file = std::fs::File::open(path)?;
    read_edges(BufReader::new(file), opts)
}

/// Load a [`TemporalGraph`] from a text file, remapping ids according to
/// `opts`.
pub fn load_graph(path: impl AsRef<Path>, opts: &LoadOptions) -> Result<TemporalGraph, LoadError> {
    let raw = load_edges(path, opts)?;
    Ok(graph_from_raw(raw, opts))
}

/// Build a graph from raw 64-bit-id triples (the in-memory equivalent of
/// [`load_graph`]).
#[must_use]
pub fn graph_from_raw(raw: Vec<(u64, u64, Timestamp)>, opts: &LoadOptions) -> TemporalGraph {
    let mut b = GraphBuilder::with_capacity(raw.len());
    if opts.compact_ids {
        let mut remap: FxHashMap<u64, NodeId> = FxHashMap::default();
        let intern = |x: u64, remap: &mut FxHashMap<u64, NodeId>| -> NodeId {
            let next = remap.len() as NodeId;
            *remap.entry(x).or_insert(next)
        };
        for (s, d, t) in raw {
            if s == d {
                // Don't let a to-be-dropped self-loop claim an id slot
                // (keeps num_nodes stable across save/load round trips);
                // still push it so the builder's drop counter is right.
                b.add_edge(0, 0, t);
                continue;
            }
            let s = intern(s, &mut remap);
            let d = intern(d, &mut remap);
            b.add_edge(s, d, t);
        }
    } else {
        for (s, d, t) in raw {
            b.add_edge(
                NodeId::try_from(s).expect("node id exceeds u32 without compact_ids"),
                NodeId::try_from(d).expect("node id exceeds u32 without compact_ids"),
                t,
            );
        }
    }
    b.build()
}

/// Write a graph back out as `src dst t` lines (chronological order).
pub fn write_edges(graph: &TemporalGraph, mut w: impl Write) -> std::io::Result<()> {
    for e in graph.edges() {
        writeln!(w, "{} {} {}", e.src, e.dst, e.t)?;
    }
    Ok(())
}

/// Save a graph to a text file in the same format [`load_graph`] reads.
pub fn save_graph(graph: &TemporalGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edges(graph, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Vec<(u64, u64, Timestamp)>, LoadError> {
        read_edges(Cursor::new(text), &LoadOptions::default())
    }

    #[test]
    fn parses_whitespace_separated() {
        let edges = parse("1 2 100\n2 3 200\n").unwrap();
        assert_eq!(edges, vec![(1, 2, 100), (2, 3, 200)]);
    }

    #[test]
    fn parses_comma_separated() {
        let edges = parse("1,2,100\n").unwrap();
        assert_eq!(edges, vec![(1, 2, 100)]);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let edges = parse("# header\n% other\n\n1 2 3\n").unwrap();
        assert_eq!(edges, vec![(1, 2, 3)]);
    }

    #[test]
    fn ignores_trailing_columns() {
        let edges = parse("1 2 100 extra stuff\n").unwrap();
        assert_eq!(edges, vec![(1, 2, 100)]);
    }

    #[test]
    fn timestamp_column_override_for_bitcoin_format() {
        let opts = LoadOptions {
            timestamp_column: 3,
            ..LoadOptions::default()
        };
        // src dst rating time
        let edges = read_edges(Cursor::new("6 2 4 1289241911\n"), &opts).unwrap();
        assert_eq!(edges, vec![(6, 2, 1289241911)]);
    }

    #[test]
    fn float_timestamps_truncate_when_allowed() {
        let opts = LoadOptions {
            allow_float_timestamps: true,
            ..LoadOptions::default()
        };
        let edges = read_edges(Cursor::new("1 2 100.75\n"), &opts).unwrap();
        assert_eq!(edges, vec![(1, 2, 100)]);
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse("1 2 3\noops 2 3\n").unwrap_err();
        match err {
            LoadError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("oops"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn error_on_too_few_fields() {
        let err = parse("1 2\n").unwrap_err();
        assert!(matches!(err, LoadError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn error_on_bad_timestamp() {
        let err = parse("1 2 tomorrow\n").unwrap_err();
        assert!(err.to_string().contains("tomorrow"));
    }

    #[test]
    fn empty_input_yields_no_edges_and_an_empty_graph() {
        let edges = parse("").unwrap();
        assert!(edges.is_empty());
        // Comment-only input is just as empty.
        let edges = parse("# nothing\n% here\n\n").unwrap();
        assert!(edges.is_empty());
        let g = graph_from_raw(edges, &LoadOptions::default());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn non_monotone_input_parses_in_file_order_and_builds_sorted() {
        // The reader preserves delivery order (streaming callers need
        // it); the builder then normalises to chronological order.
        let raw = parse("1 2 300\n2 3 100\n1 3 200\n").unwrap();
        assert_eq!(raw, vec![(1, 2, 300), (2, 3, 100), (1, 3, 200)]);
        let g = graph_from_raw(raw, &LoadOptions::default());
        let times: Vec<_> = g.edges().iter().map(|e| e.t).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn error_on_bad_node_id() {
        let err = parse("alice 2 3\n").unwrap_err();
        assert!(err.to_string().contains("alice"), "{err}");
        let err = parse("1 -7 3\n").unwrap_err();
        assert!(err.to_string().contains("-7"), "{err}");
    }

    #[test]
    fn graph_roundtrip_through_text() {
        let g = graph_from_raw(
            vec![(100, 200, 5), (200, 300, 1), (100, 200, 5)],
            &LoadOptions::default(),
        );
        let mut buf = Vec::new();
        write_edges(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let g2 = graph_from_raw(
            read_edges(Cursor::new(text.as_str()), &LoadOptions::default()).unwrap(),
            &LoadOptions::default(),
        );
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.num_nodes(), g2.num_nodes());
        // Chronological order is preserved.
        let t1: Vec<_> = g.edges().iter().map(|e| e.t).collect();
        let t2: Vec<_> = g2.edges().iter().map(|e| e.t).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn compact_ids_remaps_sparse_ids() {
        let g = graph_from_raw(vec![(1_000_000_000_000, 7, 1)], &LoadOptions::default());
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("tgraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.txt");
        let g = graph_from_raw(vec![(0, 1, 1), (1, 2, 2)], &LoadOptions::default());
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path, &LoadOptions::default()).unwrap();
        assert_eq!(g2.num_edges(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_graph(
            "/nonexistent/definitely/missing.txt",
            &LoadOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser never panics on arbitrary input — it either
            /// yields edges or a structured error.
            #[test]
            fn reader_never_panics(text in "\\PC*") {
                let _ = read_edges(Cursor::new(text.as_str()), &LoadOptions::default());
            }

            /// Arbitrary well-formed triples survive a full round trip
            /// (parse → build → write → parse → build) with identical
            /// graph shape.
            #[test]
            fn roundtrip_preserves_graph(
                rows in proptest::collection::vec((0u64..50, 0u64..50, -1000i64..1000), 0..60)
            ) {
                let text: String = rows
                    .iter()
                    .map(|(s, d, t)| format!("{s} {d} {t}\n"))
                    .collect();
                let raw = read_edges(Cursor::new(text.as_str()), &LoadOptions::default()).unwrap();
                let g1 = graph_from_raw(raw, &LoadOptions::default());
                let mut buf = Vec::new();
                write_edges(&g1, &mut buf).unwrap();
                let raw2 = read_edges(Cursor::new(std::str::from_utf8(&buf).unwrap()), &LoadOptions::default()).unwrap();
                let g2 = graph_from_raw(raw2, &LoadOptions::default());
                prop_assert_eq!(g1.num_edges(), g2.num_edges());
                prop_assert_eq!(g1.num_nodes(), g2.num_nodes());
                let t1: Vec<_> = g1.edges().iter().map(|e| e.t).collect();
                let t2: Vec<_> = g2.edges().iter().map(|e| e.t).collect();
                prop_assert_eq!(t1, t2);
            }
        }
    }
}
