//! Window-slicing index over the SoA event lanes: for each fixed-length
//! window of the time axis, the per-node event ranges that start inside
//! it.
//!
//! The approximate counting engine (`hare::sample`) partitions the
//! timeline into windows of length `c·δ` and runs the exact fused kernel
//! only on the windows a coin flip selects. The kernel's unit of work is
//! a *first-edge position range* within one node's sequence `S_u`
//! ([`crate::TemporalGraph::node_events`]), so the index this module
//! builds answers exactly one query: *for window `k`, which contiguous
//! ranges of which node sequences have their first edge inside `k`?*
//!
//! Because every `S_u` is time-sorted, the positions belonging to one
//! window form a contiguous run per node, and a node contributes at most
//! one [`NodeSlice`] per window. The index is CSR-shaped: one flat entry
//! array grouped by window, plus per-window offsets. Construction costs
//! one linear pass over the timestamp lanes (`O(|E|)`); querying a
//! window is a slice borrow. Nothing is copied from the graph — a
//! slice stores *positions*, and counting kernels read the lanes of the
//! original graph through them, including the events *after* the window
//! that δ-spanning instances need (the boundary extension is the
//! kernel's own `t ≤ t₁ + δ` bound, not the slicer's concern).

use crate::graph::TemporalGraph;
use crate::types::{NodeId, Timestamp};

/// One node's contiguous run of event positions whose timestamps fall in
/// a given window: positions `start..end` of `S_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSlice {
    /// The node whose sequence the run belongs to.
    pub node: NodeId,
    /// First event position of the run (inclusive, local to `S_node`).
    pub start: u32,
    /// One past the last event position of the run (local to `S_node`).
    pub end: u32,
}

impl NodeSlice {
    /// The run as a `usize` range, ready for
    /// [`crate::TemporalGraph::node_events`] + range-restricted kernels.
    #[inline]
    #[must_use]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// Partition of the time axis into fixed-length windows, with the
/// per-node event runs of each window (see the module docs).
///
/// Window `k` covers `[origin + k·len, origin + (k+1)·len)` where
/// `origin` is the graph's earliest timestamp; every event of the graph
/// belongs to exactly one window, so the per-window runs partition all
/// event positions.
///
/// Storage is **sparse**: only windows with at least one kept run are
/// materialised, so memory is `O(runs)` and never scales with the raw
/// window count `num_windows` — a sparse graph whose time span is many
/// orders of magnitude larger than the window length (millisecond
/// timestamps, paper-scale δ) costs the same as a dense one.
#[derive(Debug, Clone)]
pub struct WindowSlices {
    len: Timestamp,
    origin: Timestamp,
    num_windows: usize,
    // Active windows in ascending order; `entries[offsets[i]..offsets[i+1]]`
    // are the runs of window `window_ids[i]`. 64-bit ids: a sparse graph
    // over a wide span can have far more than 2^32 (mostly dead) windows.
    window_ids: Box<[u64]>,
    offsets: Box<[usize]>,
    entries: Box<[NodeSlice]>,
}

impl WindowSlices {
    /// Slice `g`'s timeline into windows of length `len`.
    ///
    /// # Panics
    /// Panics if `len <= 0`.
    #[must_use]
    pub fn build(g: &TemporalGraph, len: Timestamp) -> WindowSlices {
        WindowSlices::build_filtered(g, len, |_| true)
    }

    /// [`WindowSlices::build`], materialising runs only for the windows
    /// `keep` selects — the windows a sampling engine will never visit
    /// cost nothing beyond the lane walk. Dropped windows still count
    /// toward [`WindowSlices::num_windows`]; their
    /// [`WindowSlices::slices_of`] is simply empty.
    ///
    /// # Panics
    /// Panics if `len <= 0`.
    #[must_use]
    pub fn build_filtered(
        g: &TemporalGraph,
        len: Timestamp,
        mut keep: impl FnMut(usize) -> bool,
    ) -> WindowSlices {
        let Some((origin, num_windows)) = scan_header(g, len) else {
            return WindowSlices {
                len,
                origin: 0,
                num_windows: 0,
                window_ids: Box::default(),
                offsets: vec![0].into_boxed_slice(),
                entries: Box::default(),
            };
        };

        // Pass 1: collect the kept runs (node-major order). The `keep`
        // coin result is memoised per window id because consecutive runs
        // of a node often share a window.
        let mut runs: Vec<(u64, NodeSlice)> = Vec::new();
        let mut memo: Option<(usize, bool)> = None;
        scan(g, len, |k, node, range| {
            let kept = match memo {
                Some((mk, decision)) if mk == k => decision,
                _ => {
                    let decision = keep(k);
                    memo = Some((k, decision));
                    decision
                }
            };
            if kept {
                runs.push((
                    k as u64,
                    NodeSlice {
                        node,
                        start: range.start as u32,
                        end: range.end as u32,
                    },
                ));
            }
        });

        // Pass 2: group window-major (queries are per window). A stable
        // sort keys only on the window id, keeping each window's runs in
        // node-major discovery order.
        runs.sort_by_key(|&(k, _)| k);
        let mut window_ids: Vec<u64> = Vec::new();
        let mut offsets: Vec<usize> = Vec::new();
        let mut entries: Vec<NodeSlice> = Vec::with_capacity(runs.len());
        for (k, slice) in runs {
            if window_ids.last() != Some(&k) {
                window_ids.push(k);
                offsets.push(entries.len());
            }
            entries.push(slice);
        }
        offsets.push(entries.len());

        WindowSlices {
            len,
            origin,
            num_windows,
            window_ids: window_ids.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            entries: entries.into_boxed_slice(),
        }
    }

    /// Number of windows tiling the graph's time span (0 for an empty
    /// graph), *including* windows with no events or filtered out by
    /// [`WindowSlices::build_filtered`].
    #[inline]
    #[must_use]
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// The active windows — those holding at least one kept run — in
    /// ascending order. This is the set a driver should iterate; all
    /// other windows are empty by construction.
    pub fn active_windows(&self) -> impl Iterator<Item = usize> + '_ {
        self.window_ids.iter().map(|&k| k as usize)
    }

    /// Number of active windows (length of
    /// [`WindowSlices::active_windows`]).
    #[inline]
    #[must_use]
    pub fn num_active_windows(&self) -> usize {
        self.window_ids.len()
    }

    /// The fixed window length this index was built with.
    #[inline]
    #[must_use]
    pub fn window_len(&self) -> Timestamp {
        self.len
    }

    /// Start of window 0 — the graph's earliest timestamp (0 for an
    /// empty graph).
    #[inline]
    #[must_use]
    pub fn origin(&self) -> Timestamp {
        self.origin
    }

    /// Half-open time bounds `[start, end)` of window `k`.
    ///
    /// # Panics
    /// Panics if `k >= num_windows()`.
    #[inline]
    #[must_use]
    pub fn bounds(&self, k: usize) -> (Timestamp, Timestamp) {
        assert!(k < self.num_windows(), "window {k} out of range");
        let start = self.origin.saturating_add((k as Timestamp) * self.len);
        (start, start.saturating_add(self.len))
    }

    /// The per-node event runs whose first edge lies in window `k`
    /// (empty when no node is active in the window, or when `k` was
    /// filtered out). `O(log active)` — drivers iterating every active
    /// window should prefer [`WindowSlices::active_windows`].
    ///
    /// # Panics
    /// Panics if `k >= num_windows()`.
    #[must_use]
    pub fn slices_of(&self, k: usize) -> &[NodeSlice] {
        assert!(k < self.num_windows, "window {k} out of range");
        match self.window_ids.binary_search(&(k as u64)) {
            Ok(i) => &self.entries[self.offsets[i]..self.offsets[i + 1]],
            Err(_) => &[],
        }
    }

    /// Total number of `(node, window)` runs across all windows.
    #[inline]
    #[must_use]
    pub fn num_runs(&self) -> usize {
        self.entries.len()
    }
}

/// The window grid parameters of `g` under window length `len`:
/// `(origin, num_windows)`, or `None` for an empty graph.
///
/// # Panics
/// Panics if `len <= 0`.
#[must_use]
pub fn scan_header(g: &TemporalGraph, len: Timestamp) -> Option<(Timestamp, usize)> {
    assert!(len > 0, "window length must be positive");
    g.min_time()
        .map(|origin| (origin, (g.time_span() / len) as usize + 1))
}

/// Stream every `(window, node, position range)` run of `g` under window
/// length `len` — the zero-materialisation form of [`WindowSlices`], for
/// drivers that consume runs node-major in one pass (the sequential
/// sampling engine). Runs partition each node's event positions; a node
/// clustered into few windows yields few runs.
///
/// One linear walk of the timestamp lanes (`O(|E|)`): the window index
/// advances incrementally across nearby jumps and falls back to a
/// division only across large gaps.
///
/// # Panics
/// Panics if `len <= 0`.
pub fn scan(
    g: &TemporalGraph,
    len: Timestamp,
    mut visit: impl FnMut(usize, NodeId, std::ops::Range<usize>),
) {
    let Some((origin, _)) = scan_header(g, len) else {
        return;
    };
    for u in g.node_ids() {
        let ts = g.node_events(u).ts_lane();
        let mut i = 0usize;
        let mut k: Timestamp = -1;
        let mut window_end: Timestamp = Timestamp::MIN;
        while i < ts.len() {
            let t = ts.get(i);
            if t >= window_end {
                if k < 0 || t >= window_end.saturating_add(len.saturating_mul(8)) {
                    // Large gap (or first event): one division.
                    k = (t - origin) / len;
                    window_end = origin
                        .saturating_add(k.saturating_add(1).saturating_mul(len))
                        .max(t);
                } else {
                    // Near jump: step the grid forward division-free.
                    while t >= window_end {
                        k += 1;
                        window_end = window_end.saturating_add(len);
                    }
                }
            }
            let mut j = i + 1;
            while j < ts.len() && ts.get(j) < window_end {
                j += 1;
            }
            visit(k as usize, u, i..j);
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{erdos_renyi_temporal, paper_fig1_toy};

    #[test]
    fn runs_partition_every_event_position() {
        for (g, len) in [
            (paper_fig1_toy(), 5),
            (paper_fig1_toy(), 100),
            (erdos_renyi_temporal(20, 400, 2_000, 7), 137),
        ] {
            let ws = WindowSlices::build(&g, len);
            // Reassemble each node's position set from the runs.
            let mut covered: Vec<Vec<bool>> =
                g.node_ids().map(|u| vec![false; g.degree(u)]).collect();
            for k in 0..ws.num_windows() {
                let (lo, hi) = ws.bounds(k);
                for s in ws.slices_of(k) {
                    assert!(s.start < s.end, "empty run stored");
                    let ts = g.node_events(s.node).ts_lane();
                    for i in s.range() {
                        assert!(
                            ts.get(i) >= lo && ts.get(i) < hi,
                            "event at t={} outside window [{lo},{hi})",
                            ts.get(i)
                        );
                        let seen = &mut covered[s.node as usize][i];
                        assert!(!*seen, "position covered twice");
                        *seen = true;
                    }
                }
            }
            for node_cov in covered {
                assert!(node_cov.into_iter().all(|c| c), "position never covered");
            }
        }
    }

    #[test]
    fn single_window_covers_whole_sequences() {
        let g = paper_fig1_toy();
        let ws = WindowSlices::build(&g, g.time_span() + 1);
        assert_eq!(ws.num_windows(), 1);
        let slices = ws.slices_of(0);
        assert_eq!(
            slices.len(),
            g.node_ids().filter(|&u| g.degree(u) > 0).count()
        );
        for s in slices {
            assert_eq!(s.range(), 0..g.degree(s.node));
        }
    }

    #[test]
    fn window_count_and_bounds_tile_the_span() {
        let g = paper_fig1_toy(); // span [1, 21]
        let ws = WindowSlices::build(&g, 10);
        assert_eq!(ws.origin(), 1);
        assert_eq!(ws.num_windows(), 3); // [1,11), [11,21), [21,31)
        assert_eq!(ws.bounds(0), (1, 11));
        assert_eq!(ws.bounds(2), (21, 31));
        assert_eq!(ws.window_len(), 10);
    }

    #[test]
    fn scan_agrees_with_build() {
        let g = erdos_renyi_temporal(15, 300, 1_500, 4);
        let ws = WindowSlices::build(&g, 90);
        let mut scanned: Vec<(usize, NodeSlice)> = Vec::new();
        scan(&g, 90, |k, node, range| {
            scanned.push((
                k,
                NodeSlice {
                    node,
                    start: range.start as u32,
                    end: range.end as u32,
                },
            ));
        });
        assert_eq!(scanned.len(), ws.num_runs());
        let mut from_index: Vec<(usize, NodeSlice)> = (0..ws.num_windows())
            .flat_map(|k| ws.slices_of(k).iter().map(move |&s| (k, s)))
            .collect();
        // scan is node-major, the index window-major: compare as sets.
        let key = |&(k, s): &(usize, NodeSlice)| (s.node, s.start, k as u32);
        scanned.sort_unstable_by_key(key);
        from_index.sort_unstable_by_key(key);
        assert_eq!(scanned, from_index);
    }

    #[test]
    fn filtered_build_keeps_only_selected_windows() {
        let g = erdos_renyi_temporal(15, 300, 1_500, 4);
        let full = WindowSlices::build(&g, 90);
        let odd = WindowSlices::build_filtered(&g, 90, |k| k % 2 == 1);
        assert_eq!(odd.num_windows(), full.num_windows());
        for k in 0..full.num_windows() {
            if k % 2 == 1 {
                assert_eq!(odd.slices_of(k), full.slices_of(k));
            } else {
                assert!(odd.slices_of(k).is_empty());
            }
        }
    }

    #[test]
    fn huge_sparse_span_costs_only_the_runs() {
        // Two clusters separated by ~10^14 time units: the window count
        // is astronomical but storage must stay O(runs).
        let g = TemporalGraph::from_edges(vec![
            crate::TemporalEdge::new(0, 1, 0),
            crate::TemporalEdge::new(1, 2, 5),
            crate::TemporalEdge::new(0, 2, 100_000_000_000_000),
            crate::TemporalEdge::new(2, 1, 100_000_000_000_007),
        ]);
        let ws = WindowSlices::build(&g, 60);
        assert!(ws.num_windows() > 1_000_000_000_000);
        assert_eq!(ws.num_active_windows(), 2);
        assert!(ws.num_runs() <= 8);
        let active: Vec<usize> = ws.active_windows().collect();
        assert_eq!(active[0], 0);
        assert!(ws.slices_of(active[0]).len() + ws.slices_of(active[1]).len() == ws.num_runs());
        // A dead window in the gap answers instantly with nothing.
        assert!(ws.slices_of(12_345_678).is_empty());
    }

    #[test]
    fn empty_graph_has_no_windows() {
        let g = TemporalGraph::from_edges(vec![]);
        let ws = WindowSlices::build(&g, 60);
        assert_eq!(ws.num_windows(), 0);
        assert_eq!(ws.num_runs(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_window_panics() {
        let _ = WindowSlices::build(&paper_fig1_toy(), 0);
    }
}
