//! Deterministic synthetic temporal-graph generators.
//!
//! The paper evaluates on 16 public datasets that cannot be downloaded in
//! this environment, so the benchmark harness substitutes **calibrated
//! synthetic stand-ins** (DESIGN.md §3). The cost of every algorithm in the
//! workspace is governed by four workload properties, all of which these
//! generators control:
//!
//! 1. number of temporal edges `|E|`,
//! 2. degree skew (hubs dominate run time — Fig. 9),
//! 3. δ-window density `d^δ` (events per node per δ),
//! 4. pair multiplicity (repeated edges between the same two nodes feed
//!    the pair motifs) and wedge closure (feeds the triangle motifs).
//!
//! The main generator is a *conversation model*: traffic arrives as bursts
//! of consecutive edges between a Zipf-sampled node pair, optionally
//! reciprocated, and with a configurable probability a burst closes a
//! triangle with a recently active neighbouring pair. All randomness flows
//! from a caller-supplied seed, so every dataset is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

use crate::builder::GraphBuilder;
use crate::graph::TemporalGraph;
use crate::types::{NodeId, TemporalEdge, Timestamp};

/// Configuration of the conversation-model generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of temporal edges to emit.
    pub edges: usize,
    /// Total time span; timestamps fall in `[0, time_span]`.
    pub time_span: Timestamp,
    /// Zipf exponent for node popularity (≈1.0 → extreme hubs like
    /// WikiTalk; ≥2 → nearly flat). Must be > 0.
    pub zipf_exponent: f64,
    /// Expected number of edges per conversation burst (≥ 1).
    pub mean_burst_len: f64,
    /// Probability that a burst edge reverses direction (reciprocity).
    pub reciprocate_prob: f64,
    /// Maximum gap between consecutive edges of a burst.
    pub burst_gap: Timestamp,
    /// Probability that a finished burst triggers a triangle-closing burst
    /// `(v, w)` where `u, v` was just active and `w` was recently active
    /// with `u`.
    pub triangle_prob: f64,
    /// Probability that a fresh conversation starts near recent activity
    /// instead of at a uniform time — temporal clustering, the property
    /// that populates δ windows with multi-neighbour activity (stars).
    pub time_cluster_prob: f64,
    /// RNG seed; identical configs produce identical graphs.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            nodes: 1_000,
            edges: 10_000,
            time_span: 1_000_000,
            zipf_exponent: 1.3,
            mean_burst_len: 2.0,
            reciprocate_prob: 0.3,
            burst_gap: 300,
            triangle_prob: 0.15,
            time_cluster_prob: 0.5,
            seed: 0xC0FFEE,
        }
    }
}

impl GenConfig {
    /// Generate the graph described by this configuration.
    ///
    /// # Panics
    /// Panics if `nodes == 0` with `edges > 0`, or on non-positive
    /// `zipf_exponent` / `mean_burst_len < 1`.
    #[must_use]
    pub fn generate(&self) -> TemporalGraph {
        assert!(
            self.edges == 0 || self.nodes >= 2,
            "need at least 2 nodes to place edges"
        );
        assert!(self.zipf_exponent > 0.0, "zipf_exponent must be positive");
        assert!(self.mean_burst_len >= 1.0, "mean_burst_len must be >= 1");

        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.nodes as u64, self.zipf_exponent).expect("valid Zipf parameters");
        // Zipf yields ranks in 1..=nodes; rank 1 = most popular. Use the
        // rank directly as the node id so hubs are the low ids.
        let sample_node = |rng: &mut StdRng| -> NodeId { (zipf.sample(rng) as u64 - 1) as NodeId };

        let mut b = GraphBuilder::with_capacity(self.edges);
        // Ring of recent conversations (pair + last activity time):
        // wedge closure and temporal clustering both draw from it.
        let mut recent: Vec<(NodeId, NodeId, Timestamp)> = Vec::with_capacity(64);
        let continue_p = 1.0 - 1.0 / self.mean_burst_len;
        let gap = self.burst_gap.max(1);

        let mut emitted = 0usize;
        while emitted < self.edges {
            // Pick the conversation pair and its start time. Real
            // communication graphs are clustered in time (active hours,
            // cascades): most conversations start near recent activity,
            // which is what puts stars and triangles inside δ windows.
            let mut start_t = None;
            let (u, v) = if !recent.is_empty() && rng.gen_bool(self.triangle_prob) {
                // Close a wedge: find a recent conversation sharing a node
                // with another *temporally close* one (both arms must sit
                // inside the same δ-scale window for a temporal triangle
                // to form); the closing burst starts right after the
                // later arm.
                let &(a, b1, t1) = &recent[rng.gen_range(0..recent.len())];
                let close = recent.iter().find(|&&(c, d, t2)| {
                    (t1 - t2).abs() <= gap
                        && (c == a || c == b1 || d == a || d == b1)
                        && !(c == a && d == b1)
                        && !(c == b1 && d == a)
                });
                match close {
                    Some(&(c, d, t2)) => {
                        // Identify the two non-shared endpoints.
                        let (x, y) = if c == a || c == b1 {
                            (if c == a { b1 } else { a }, d)
                        } else {
                            (if d == a { b1 } else { a }, c)
                        };
                        if x != y {
                            start_t = Some(t1.max(t2) + rng.gen_range(1..=gap));
                            (x, y)
                        } else {
                            let u = sample_node(&mut rng);
                            let mut v = sample_node(&mut rng);
                            while v == u {
                                v = sample_node(&mut rng);
                            }
                            (u, v)
                        }
                    }
                    None => {
                        let u = sample_node(&mut rng);
                        let mut v = sample_node(&mut rng);
                        while v == u {
                            v = sample_node(&mut rng);
                        }
                        (u, v)
                    }
                }
            } else {
                let u = sample_node(&mut rng);
                let mut v = sample_node(&mut rng);
                while v == u {
                    v = sample_node(&mut rng);
                }
                (u, v)
            };
            let mut t = start_t.unwrap_or_else(|| {
                if !recent.is_empty() && rng.gen_bool(self.time_cluster_prob) {
                    // Cluster near a recent conversation.
                    let &(_, _, tr) = &recent[rng.gen_range(0..recent.len())];
                    tr + rng.gen_range(1..=gap * 2)
                } else {
                    rng.gen_range(0..=self.time_span)
                }
            });

            // Emit the burst.
            loop {
                let (s, d) = if rng.gen_bool(self.reciprocate_prob) {
                    (v, u)
                } else {
                    (u, v)
                };
                b.add_edge(s, d, t.min(self.time_span));
                emitted += 1;
                if emitted >= self.edges || !rng.gen_bool(continue_p) {
                    break;
                }
                t += rng.gen_range(1..=gap);
            }

            if recent.len() == 64 {
                let idx = rng.gen_range(0..recent.len());
                recent.swap_remove(idx);
            }
            recent.push((u, v, t.min(self.time_span)));
        }

        b.build()
    }
}

/// Uniform-random temporal graph: `edges` edges between uniformly chosen
/// distinct node pairs at uniformly chosen times. The simplest workload;
/// used heavily by tests.
#[must_use]
pub fn erdos_renyi_temporal(
    nodes: usize,
    edges: usize,
    time_span: Timestamp,
    seed: u64,
) -> TemporalGraph {
    assert!(edges == 0 || nodes >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(edges);
    for _ in 0..edges {
        let u = rng.gen_range(0..nodes) as NodeId;
        let mut v = rng.gen_range(0..nodes) as NodeId;
        while v == u {
            v = rng.gen_range(0..nodes) as NodeId;
        }
        b.add_edge(u, v, rng.gen_range(0..=time_span));
    }
    b.build()
}

/// A dense "hub burst" graph: one center node exchanging rapid-fire edges
/// with `spokes` neighbours plus some spoke↔spoke chatter. Stresses the
/// intra-node parallel path of HARE (one node dominating total work, as in
/// Fig. 9b).
#[must_use]
pub fn hub_burst(spokes: usize, events: usize, time_span: Timestamp, seed: u64) -> TemporalGraph {
    assert!(spokes >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(events);
    let center: NodeId = 0;
    for _ in 0..events {
        let spoke = rng.gen_range(1..=spokes) as NodeId;
        let t = rng.gen_range(0..=time_span);
        match rng.gen_range(0..10) {
            0..=5 => b.add_edge(center, spoke, t),
            6..=8 => b.add_edge(spoke, center, t),
            _ => {
                let mut other = rng.gen_range(1..=spokes) as NodeId;
                while other == spoke {
                    other = rng.gen_range(1..=spokes) as NodeId;
                }
                b.add_edge(spoke, other, t);
            }
        }
    }
    b.build()
}

/// Reusable `proptest` strategies over temporal-graph inputs, shared by
/// the property and differential test suites across the workspace
/// (`tests/property_invariants.rs`, `tests/windowed_vs_batch.rs`).
///
/// All strategies deliberately favour *adversarial* shapes for counting
/// code: few nodes (dense multi-edges), narrow timestamp ranges (heavy
/// ties and bursts), and raw `(src, dst, t)` triples that may contain
/// self-loops and duplicates so ingestion policies get exercised too.
pub mod arb {
    use super::{NodeId, TemporalEdge, TemporalGraph, Timestamp};
    use crate::builder::GraphBuilder;
    use proptest::prelude::*;

    /// Raw `(src, dst, t)` triples: up to `max_edges` edges over
    /// `max_nodes` nodes with timestamps in `0..max_t`. May contain
    /// self-loops and exact duplicates.
    pub fn raw_triples(
        max_nodes: u32,
        max_edges: usize,
        max_t: Timestamp,
    ) -> impl Strategy<Value = Vec<(NodeId, NodeId, Timestamp)>> {
        assert!(max_nodes >= 1 && max_edges >= 1 && max_t >= 1);
        prop::collection::vec((0..max_nodes, 0..max_nodes, 0..max_t), 0..max_edges)
    }

    /// Chronologically sorted edge lists (self-loops removed, ties kept
    /// in generation order) — the shape accepted by the in-order
    /// streaming counters.
    pub fn sorted_edges(
        max_nodes: u32,
        max_edges: usize,
        max_t: Timestamp,
    ) -> impl Strategy<Value = Vec<TemporalEdge>> {
        raw_triples(max_nodes, max_edges, max_t).prop_map(|mut triples| {
            triples.retain(|&(s, d, _)| s != d);
            triples.sort_by_key(|&(_, _, t)| t);
            triples
                .into_iter()
                .map(|(s, d, t)| TemporalEdge::new(s, d, t))
                .collect()
        })
    }

    /// Arbitrary small temporal multigraphs (self-loops dropped by the
    /// builder, heavy timestamp ties).
    pub fn graph(
        max_nodes: u32,
        max_edges: usize,
        max_t: Timestamp,
    ) -> impl Strategy<Value = TemporalGraph> {
        raw_triples(max_nodes, max_edges, max_t).prop_map(|triples| {
            let mut b = GraphBuilder::new();
            for (s, d, t) in triples {
                b.add_edge(s, d, t);
            }
            b.build()
        })
    }

    /// A `(delta, window)` pair with `delta <= window`, covering the
    /// degenerate `window == delta` case often.
    pub fn delta_window(
        max_delta: Timestamp,
        max_extra: Timestamp,
    ) -> impl Strategy<Value = (Timestamp, Timestamp)> {
        assert!(max_delta >= 1 && max_extra >= 1);
        (0..max_delta, 0..max_extra).prop_map(|(delta, extra)| (delta, delta + extra))
    }
}

/// Build the exact toy temporal graph of the paper's Fig. 1
/// (nodes: a=0, b=1, c=2, d=3, e=4; 12 temporal edges; δ=10s examples).
#[must_use]
pub fn paper_fig1_toy() -> TemporalGraph {
    TemporalGraph::from_edges(vec![
        TemporalEdge::new(4, 3, 1),  // e -> d @ 1s
        TemporalEdge::new(0, 2, 4),  // a -> c @ 4s
        TemporalEdge::new(4, 2, 6),  // e -> c @ 6s
        TemporalEdge::new(0, 2, 8),  // a -> c @ 8s
        TemporalEdge::new(3, 0, 9),  // d -> a @ 9s
        TemporalEdge::new(3, 2, 10), // d -> c @ 10s
        TemporalEdge::new(0, 1, 11), // a -> b @ 11s
        TemporalEdge::new(3, 4, 14), // d -> e @ 14s
        TemporalEdge::new(0, 2, 15), // a -> c @ 15s
        TemporalEdge::new(2, 3, 17), // c -> d @ 17s
        TemporalEdge::new(4, 3, 18), // e -> d @ 18s
        TemporalEdge::new(3, 4, 21), // d -> e @ 21s
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{top_k_degrees, GraphStats};

    #[test]
    fn conversation_model_hits_requested_size() {
        let g = GenConfig {
            nodes: 200,
            edges: 5_000,
            ..GenConfig::default()
        }
        .generate();
        assert_eq!(g.num_edges(), 5_000);
        assert!(g.num_nodes() <= 200);
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = GenConfig {
            nodes: 100,
            edges: 1_000,
            seed: 42,
            ..GenConfig::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            GenConfig {
                nodes: 100,
                edges: 1_000,
                seed,
                ..GenConfig::default()
            }
            .generate()
        };
        assert_ne!(mk(1).edges(), mk(2).edges());
    }

    #[test]
    fn zipf_skew_creates_hubs() {
        let g = GenConfig {
            nodes: 2_000,
            edges: 20_000,
            zipf_exponent: 1.05,
            seed: 7,
            ..GenConfig::default()
        }
        .generate();
        let top = top_k_degrees(&g, 10);
        let stats = GraphStats::compute(&g);
        // The top hub should be far above the mean degree.
        assert!(
            top[0] as f64 > 20.0 * stats.mean_degree,
            "top degree {} vs mean {}",
            top[0],
            stats.mean_degree
        );
    }

    #[test]
    fn bursts_create_pair_multiplicity() {
        let g = GenConfig {
            nodes: 500,
            edges: 10_000,
            mean_burst_len: 4.0,
            seed: 11,
            ..GenConfig::default()
        }
        .generate();
        // Multi-edges mean strictly fewer pairs than edges.
        assert!(g.pairs().num_pairs() < g.num_edges() * 7 / 10);
    }

    #[test]
    fn timestamps_within_span() {
        let cfg = GenConfig {
            nodes: 100,
            edges: 2_000,
            time_span: 5_000,
            seed: 3,
            ..GenConfig::default()
        };
        let g = cfg.generate();
        assert!(g.min_time().unwrap() >= 0);
        assert!(g.max_time().unwrap() <= 5_000);
    }

    #[test]
    fn erdos_renyi_shape() {
        let g = erdos_renyi_temporal(50, 500, 10_000, 1);
        assert_eq!(g.num_edges(), 500);
        assert!(g.num_nodes() <= 50);
        assert!(g.edges().iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn hub_burst_has_dominant_center() {
        let g = hub_burst(100, 5_000, 100_000, 9);
        let d0 = g.degree(0);
        let dmax_rest = (1..g.num_nodes() as NodeId)
            .map(|u| g.degree(u))
            .max()
            .unwrap();
        assert!(d0 > 5 * dmax_rest, "center {d0} vs rest {dmax_rest}");
    }

    #[test]
    fn fig1_toy_matches_paper() {
        let g = paper_fig1_toy();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.time_span(), 20);
    }

    #[test]
    fn zero_edges_ok() {
        let g = GenConfig {
            nodes: 10,
            edges: 0,
            ..GenConfig::default()
        }
        .generate();
        assert_eq!(g.num_edges(), 0);
        let g = erdos_renyi_temporal(10, 0, 100, 1);
        assert_eq!(g.num_edges(), 0);
    }
}
