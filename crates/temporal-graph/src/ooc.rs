//! Out-of-core edge storage: the `HARELG01` lane file.
//!
//! A lane file holds one chronological edge stream in delta-compressed
//! blocks plus a sparse time index, so a counting driver can pull any
//! time range `[lo, hi)` off disk without materialising the rest of the
//! graph. This is the substrate under `hare::ooc`'s chunked
//! `count_motifs`/`NodeProfiles`: the driver plans timestamp cuts
//! against the index, loads one δ-haloed chunk at a time, and keeps the
//! resident lane arenas under a caller-set byte budget.
//!
//! ## File layout
//!
//! ```text
//! header   magic "HARELG01" · num_nodes u64 · num_edges u64
//! blocks   ≤ 4096 edges each:
//!            first edge   zigzag-varint t (absolute) · varint src · varint dst
//!            later edges  varint Δt (≥ 0, from previous edge) · varint src · varint dst
//! index    per block: offset u64 · first_t i64 · first_edge u64   (24 bytes fixed)
//! footer   index_offset u64 · num_blocks u64 · magic "HARELG01"
//! ```
//!
//! Blocks decode standalone (their first timestamp is absolute), so a
//! range read touches only the blocks that can intersect it: binary
//! search the index by `first_t`, then scan forward. Reads go through
//! positioned `pread` (`std::os::unix::fs::FileExt::read_exact_at`) so
//! one immutable [`LaneFile`] handle can serve concurrent readers; on
//! non-unix targets a seek+read fallback over `&File` is used. `mmap`
//! is deliberately not used — it would need a platform crate the
//! workspace does not vendor, and block-granular `pread` already gives
//! the bounded-resident-set behaviour the driver needs.

use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use crate::types::{TemporalEdge, Timestamp};

/// Magic bytes opening and closing a lane file (format version 01).
pub const MAGIC: &[u8; 8] = b"HARELG01";

/// Edges per compressed block. Small enough that a boundary block decode
/// is cheap, large enough that the resident index stays tiny (24 bytes
/// per 4096 edges ≈ 6 KB per billion edges… per 1M edges).
pub const BLOCK_EDGES: usize = 4096;

fn write_varint(out: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(corrupt("varint runs past the block"));
        };
        *pos += 1;
        if shift >= 64 {
            return Err(corrupt("varint wider than 64 bits"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

const fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("lane file: {msg}"))
}

/// Positioned read: `pread` on unix (no seek state, safe under
/// concurrent readers), seek+read elsewhere.
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::Read;
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

/// Streaming writer for a `HARELG01` lane file. Push edges in
/// chronological order (ties allowed), then [`LaneFileWriter::finish`].
/// Never holds more than one block of state, so graphs of any size can
/// be spilled with constant memory.
#[derive(Debug)]
pub struct LaneFileWriter {
    out: BufWriter<File>,
    num_nodes: u64,
    num_edges: u64,
    bytes_written: u64,
    block_fill: usize,
    prev_t: Timestamp,
    index: Vec<(u64, Timestamp, u64)>,
}

impl LaneFileWriter {
    /// Create the file and write the header. `num_nodes` fixes the node
    /// id space of every graph later cut from this file.
    pub fn create(path: &Path, num_nodes: usize) -> io::Result<LaneFileWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&(num_nodes as u64).to_le_bytes())?;
        // Edge count is back-patched by `finish`.
        out.write_all(&0u64.to_le_bytes())?;
        Ok(LaneFileWriter {
            out,
            num_nodes: num_nodes as u64,
            num_edges: 0,
            bytes_written: 24,
            block_fill: 0,
            prev_t: 0,
            index: Vec::new(),
        })
    }

    /// Append one edge.
    ///
    /// # Panics
    /// Panics if the edge is a self-loop, references a node outside the
    /// declared id space, or goes backwards in time.
    pub fn push(&mut self, e: TemporalEdge) -> io::Result<()> {
        assert!(!e.is_self_loop(), "self-loop {e} not allowed");
        assert!(
            u64::from(e.src) < self.num_nodes && u64::from(e.dst) < self.num_nodes,
            "edge {e} references a node >= num_nodes ({})",
            self.num_nodes
        );
        let mut scratch = Vec::with_capacity(16);
        if self.block_fill == 0 {
            self.index.push((self.bytes_written, e.t, self.num_edges));
            write_varint(&mut scratch, zigzag(e.t))?;
        } else {
            assert!(e.t >= self.prev_t, "edges must be pushed in time order");
            write_varint(&mut scratch, (e.t - self.prev_t) as u64)?;
        }
        write_varint(&mut scratch, u64::from(e.src))?;
        write_varint(&mut scratch, u64::from(e.dst))?;
        self.out.write_all(&scratch)?;
        self.bytes_written += scratch.len() as u64;
        self.prev_t = e.t;
        self.num_edges += 1;
        self.block_fill = (self.block_fill + 1) % BLOCK_EDGES;
        Ok(())
    }

    /// Write the index and footer, back-patch the edge count, and flush.
    pub fn finish(mut self) -> io::Result<()> {
        let index_offset = self.bytes_written;
        for &(offset, first_t, first_edge) in &self.index {
            self.out.write_all(&offset.to_le_bytes())?;
            self.out.write_all(&first_t.to_le_bytes())?;
            self.out.write_all(&first_edge.to_le_bytes())?;
        }
        self.out.write_all(&index_offset.to_le_bytes())?;
        self.out
            .write_all(&(self.index.len() as u64).to_le_bytes())?;
        self.out.write_all(MAGIC)?;
        let mut file = self.out.into_inner()?;
        file.seek(SeekFrom::Start(16))?;
        file.write_all(&self.num_edges.to_le_bytes())?;
        file.sync_all()
    }
}

/// Write a whole edge slice (already chronological) as a lane file.
pub fn write_lane_file(path: &Path, num_nodes: usize, edges: &[TemporalEdge]) -> io::Result<()> {
    let mut w = LaneFileWriter::create(path, num_nodes)?;
    for &e in edges {
        w.push(e)?;
    }
    w.finish()
}

#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    offset: u64,
    first_t: Timestamp,
    first_edge: u64,
}

/// Read handle over a `HARELG01` lane file: the sparse index stays
/// resident (24 bytes per [`BLOCK_EDGES`] edges); edge blocks are read
/// on demand with positioned reads.
#[derive(Debug)]
pub struct LaneFile {
    file: File,
    num_nodes: usize,
    num_edges: u64,
    index: Vec<BlockMeta>,
    index_offset: u64,
    max_t: Option<Timestamp>,
}

impl LaneFile {
    /// Open and validate a lane file, loading its index.
    pub fn open(path: &Path) -> io::Result<LaneFile> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < 48 {
            return Err(corrupt("too short for header + footer"));
        }
        let mut header = [0u8; 24];
        read_exact_at(&file, &mut header, 0)?;
        if &header[0..8] != MAGIC {
            return Err(corrupt("bad header magic"));
        }
        let num_nodes = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let num_edges = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let mut footer = [0u8; 24];
        read_exact_at(&file, &mut footer, file_len - 24)?;
        if &footer[16..24] != MAGIC {
            return Err(corrupt("bad footer magic"));
        }
        let index_offset = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let num_blocks = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
        let expected_blocks = (num_edges as usize).div_ceil(BLOCK_EDGES);
        if num_blocks as usize != expected_blocks
            || index_offset
                .checked_add(num_blocks * 24)
                .is_none_or(|end| end + 24 != file_len)
        {
            return Err(corrupt("index bounds inconsistent with edge count"));
        }
        let mut raw = vec![0u8; num_blocks as usize * 24];
        read_exact_at(&file, &mut raw, index_offset)?;
        let index: Vec<BlockMeta> = raw
            .chunks_exact(24)
            .map(|c| BlockMeta {
                offset: u64::from_le_bytes(c[0..8].try_into().expect("8 bytes")),
                first_t: i64::from_le_bytes(c[8..16].try_into().expect("8 bytes")),
                first_edge: u64::from_le_bytes(c[16..24].try_into().expect("8 bytes")),
            })
            .collect();
        if index.windows(2).any(|w| {
            w[0].offset >= w[1].offset
                || w[0].first_t > w[1].first_t
                || w[0].first_edge >= w[1].first_edge
        }) {
            return Err(corrupt("index not monotone"));
        }
        let mut lf = LaneFile {
            file,
            num_nodes: usize::try_from(num_nodes).map_err(|_| corrupt("num_nodes overflow"))?,
            num_edges,
            index,
            index_offset,
            max_t: None,
        };
        lf.max_t = match lf.index.len() {
            0 => None,
            n => lf.decode_block(n - 1)?.last().map(|e| e.t),
        };
        Ok(lf)
    }

    /// Node id space declared at write time.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total number of edges in the file.
    #[must_use]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Earliest timestamp, or `None` for an empty file.
    #[must_use]
    pub fn min_time(&self) -> Option<Timestamp> {
        self.index.first().map(|b| b.first_t)
    }

    /// Latest timestamp, or `None` for an empty file.
    #[must_use]
    pub fn max_time(&self) -> Option<Timestamp> {
        self.max_t
    }

    /// Decode one whole block into edges.
    fn decode_block(&self, b: usize) -> io::Result<Vec<TemporalEdge>> {
        let meta = self.index[b];
        let end = self
            .index
            .get(b + 1)
            .map_or(self.index_offset, |m| m.offset);
        let mut raw = vec![0u8; (end - meta.offset) as usize];
        read_exact_at(&self.file, &mut raw, meta.offset)?;
        let n = (self.num_edges - meta.first_edge).min(BLOCK_EDGES as u64) as usize;
        let mut edges = Vec::with_capacity(n);
        let mut pos = 0usize;
        let mut t = 0 as Timestamp;
        for i in 0..n {
            t = if i == 0 {
                unzigzag(read_varint(&raw, &mut pos)?)
            } else {
                t.checked_add_unsigned(read_varint(&raw, &mut pos)?)
                    .ok_or_else(|| corrupt("timestamp delta overflow"))?
            };
            let src = u32::try_from(read_varint(&raw, &mut pos)?)
                .map_err(|_| corrupt("node id overflow"))?;
            let dst = u32::try_from(read_varint(&raw, &mut pos)?)
                .map_err(|_| corrupt("node id overflow"))?;
            edges.push(TemporalEdge::new(src, dst, t));
        }
        Ok(edges)
    }

    /// Number of edges with timestamp strictly before `t`. Exact: at
    /// most one boundary block is decoded; full blocks are answered from
    /// the index.
    pub fn count_until(&self, t: Timestamp) -> io::Result<u64> {
        let b = self.index.partition_point(|m| m.first_t < t);
        if b == 0 {
            return Ok(0);
        }
        // Blocks before b-1 are entirely < t (their edges are bounded by
        // block b-1's absolute first timestamp, which is < t). Block b-1
        // may straddle t; blocks from b on start at >= t.
        let boundary = self.decode_block(b - 1)?;
        let within = boundary.partition_point(|e| e.t < t) as u64;
        Ok(self.index[b - 1].first_edge + within)
    }

    /// All edges with timestamp in `[lo, hi)`, in chronological (file)
    /// order. Decodes only the blocks that can intersect the range.
    pub fn load_range(&self, lo: Timestamp, hi: Timestamp) -> io::Result<Vec<TemporalEdge>> {
        let mut out = Vec::new();
        if lo >= hi {
            return Ok(out);
        }
        let start = self
            .index
            .partition_point(|m| m.first_t < lo)
            .saturating_sub(1);
        for b in start..self.index.len() {
            if self.index[b].first_t >= hi {
                break;
            }
            let block = self.decode_block(b)?;
            for e in block {
                if e.t >= hi {
                    return Ok(out);
                }
                if e.t >= lo {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hare-lane-{}-{name}.hlg", std::process::id()));
        p
    }

    fn sample_edges(n: usize) -> Vec<TemporalEdge> {
        let mut edges: Vec<TemporalEdge> = (0..n)
            .map(|i| {
                TemporalEdge::new(
                    (i % 13) as u32,
                    ((i * 5 + 1) % 13) as u32,
                    ((i as i64 * 37) % 1000) - 200,
                )
            })
            .filter(|e| !e.is_self_loop())
            .collect();
        edges.sort_by_key(|e| e.t);
        edges
    }

    #[test]
    fn roundtrip_all_edges() {
        let edges = sample_edges(10_000);
        let path = temp_path("roundtrip");
        write_lane_file(&path, 13, &edges).unwrap();
        let lf = LaneFile::open(&path).unwrap();
        assert_eq!(lf.num_nodes(), 13);
        assert_eq!(lf.num_edges(), edges.len() as u64);
        assert_eq!(lf.min_time(), Some(edges[0].t));
        assert_eq!(lf.max_time(), Some(edges.last().unwrap().t));
        let all = lf.load_range(Timestamp::MIN, Timestamp::MAX).unwrap();
        assert_eq!(all, edges);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn count_until_matches_linear_scan() {
        let edges = sample_edges(9_500); // straddles block boundaries
        let path = temp_path("count");
        write_lane_file(&path, 13, &edges).unwrap();
        let lf = LaneFile::open(&path).unwrap();
        for t in [-500, -200, -1, 0, 1, 137, 500, 799, 800, 2000] {
            let want = edges.iter().filter(|e| e.t < t).count() as u64;
            assert_eq!(lf.count_until(t).unwrap(), want, "t={t}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_range_matches_linear_scan() {
        let edges = sample_edges(9_000);
        let path = temp_path("range");
        write_lane_file(&path, 13, &edges).unwrap();
        let lf = LaneFile::open(&path).unwrap();
        for (lo, hi) in [(-300, -100), (-100, 100), (0, 1), (100, 100), (700, 1200)] {
            let want: Vec<TemporalEdge> = edges
                .iter()
                .copied()
                .filter(|e| e.t >= lo && e.t < hi)
                .collect();
            assert_eq!(lf.load_range(lo, hi).unwrap(), want, "[{lo},{hi})");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_roundtrips() {
        let path = temp_path("empty");
        write_lane_file(&path, 5, &[]).unwrap();
        let lf = LaneFile::open(&path).unwrap();
        assert_eq!(lf.num_edges(), 0);
        assert_eq!(lf.min_time(), None);
        assert_eq!(lf.max_time(), None);
        assert_eq!(lf.count_until(100).unwrap(), 0);
        assert!(lf.load_range(0, 100).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let path = temp_path("corrupt");
        std::fs::write(&path, b"HARELG01 but not really a lane file").unwrap();
        assert!(LaneFile::open(&path).is_err());
        std::fs::write(&path, b"short").unwrap();
        assert!(LaneFile::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn writer_rejects_unsorted_pushes() {
        let path = temp_path("unsorted");
        let mut w = LaneFileWriter::create(&path, 4).unwrap();
        w.push(TemporalEdge::new(0, 1, 10)).unwrap();
        let _ = w.push(TemporalEdge::new(1, 2, 5));
    }
}
