//! # temporal-graph
//!
//! Substrate crate for the HARE/FAST temporal motif counting reproduction
//! (Gao et al., *Scalable Motif Counting for Large-scale Temporal Graphs*,
//! ICDE 2022).
//!
//! A *temporal graph* `G = {V, E, T}` is a multiset of directed, timestamped
//! edges `(src, dst, t)` (Definition 1 of the paper). This crate provides:
//!
//! * [`TemporalEdge`], [`Dir`], and the id/timestamp primitive types,
//! * [`GraphBuilder`] — validating construction (self-loop stripping,
//!   optional id compaction, stable time ordering),
//! * [`TemporalGraph`] — an immutable, query-optimised representation with
//!   the two indexes every counting algorithm in the paper needs:
//!   per-node time-ordered event sequences `S_u` and the per-pair edge
//!   lists `E(v, w)`,
//! * [`io`] — loaders/writers for the SNAP-style `src dst t` text format
//!   used by the paper's 16 public datasets,
//! * [`lanes`] — the selectable timestamp-lane layouts ([`LaneLayout`]):
//!   raw 8-byte slices or delta-from-anchor bit-packed runs with O(1)
//!   random-access decode,
//! * [`ooc`] — the out-of-core edge file (`HARELG01`): chronological
//!   varint-delta edges plus a sparse time index, read back in
//!   time-range chunks via `pread` so counting never materialises the
//!   full graph,
//! * [`gen`] — deterministic synthetic generators used as calibrated
//!   stand-ins for datasets that cannot be downloaded in this environment,
//! * [`stats`] — degree/time statistics backing Table II and Fig. 9.
//!
//! ## Ordering model
//!
//! All algorithms in the workspace agree on one **total order** over edges:
//! sort by `(t, input_position)`. After [`GraphBuilder::build`] the edge id
//! *is* the rank in this order, so `e1.id < e2.id ⟺ e1 ≤ e2` chronologically
//! with deterministic tie-breaking. This makes "exact counting" well defined
//! on real data where timestamps collide (see DESIGN.md §2).
//!
//! ## Example
//!
//! ```
//! use temporal_graph::{GraphBuilder, Dir};
//!
//! // A fragment of the toy graph of Fig. 1 (nodes a=0, b=1, c=2, d=3, e=4).
//! let mut b = GraphBuilder::new();
//! b.add_edge(4, 3, 1); // (v_e, v_d, 1s)
//! b.add_edge(0, 2, 4); // (v_a, v_c, 4s)
//! b.add_edge(4, 2, 6); // (v_e, v_c, 6s)
//! b.add_edge(0, 2, 8); // (v_a, v_c, 8s)
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 5);
//! assert_eq!(g.num_edges(), 4);
//! // S_a: time-ordered events incident to node a
//! let ev: Vec<_> = g.node_events(0).iter().map(|e| (e.t, e.other, e.dir)).collect();
//! assert_eq!(ev, vec![(4, 2, Dir::Out), (8, 2, Dir::Out)]);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod graph;
mod types;

pub mod gen;
pub mod io;
pub mod lanes;
pub mod ooc;
pub mod slices;
pub mod stats;
pub mod util;

pub use builder::GraphBuilder;
pub use graph::{Event, NodeEvents, NodeEventsIter, PairEvent, PairIndex, TemporalGraph};
pub use lanes::{LaneLayout, TsLane, TsRead};
pub use slices::{NodeSlice, WindowSlices};
pub use types::{Dir, EdgeId, NodeId, TemporalEdge, Timestamp};
