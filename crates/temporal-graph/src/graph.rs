//! The immutable [`TemporalGraph`] representation and its two indexes.
//!
//! Every counting algorithm in the paper is driven by one or both of:
//!
//! 1. **Node event sequences** `S_u` (§IV.A.3): for each node `u`, the
//!    time-ordered list of edges incident to `u`, each seen as
//!    `(t, other, dir)` relative to `u`. Stored as a CSR-style
//!    structure-of-arrays arena (see *Lane layout* below) so a sequence
//!    is a set of contiguous per-field slices.
//! 2. **Pair edge lists** `E(v, w)` (§IV.B): for each unordered node pair,
//!    the time-ordered list of edges between them (both directions).
//!    FAST-Tri binary-searches these within the δ window, which is the
//!    "implementation trick" the paper uses to bound `ξ` by `d^δ`.
//!
//! # Lane layout
//!
//! The event arena is stored as three parallel lanes indexed by global
//! event position (`node_offsets[u]..node_offsets[u + 1]` is `S_u`):
//!
//! * `ev_ts` — the timestamp lane. The δ-window scan and the
//!   window binary search touch **only** this lane, so a scan streams
//!   8 bytes per event instead of a 24-byte [`Event`] struct. This lane
//!   has two selectable layouts ([`LaneLayout`]): raw `Box<[i64]>` and
//!   delta-from-anchor bit-packed ([`crate::lanes::PackedTs`]); kernels
//!   consume it through [`crate::lanes::TsLane`], which decodes on the
//!   fly with O(1) random access either way.
//! * `ev_packed: Box<[u32]>` — the topology lane, encoding
//!   `other << 1 | dir` (`dir`: [`Dir::Out`] = 0, [`Dir::In`] = 1). One
//!   4-byte load yields both the far endpoint and the direction; the
//!   builder asserts `num_nodes < 2^31` so the shift never truncates.
//! * `ev_edge: Box<[u32]>` — the global edge id (chronological rank)
//!   lane, read only where the total order matters (triangle
//!   classification, enumeration baselines).
//!
//! Invariants (established by the builder, relied on by every kernel):
//! within each `S_u` all three lanes are sorted by `(t, edge)`; `edge`
//! values are strictly increasing; and the three lanes always have equal
//! length `2·|E|`. [`NodeEvents`] is the borrowed view tying the lanes
//! of one node together; [`Event`] is the materialised
//! array-of-structs form for call sites that are not hot.

use crate::lanes::{LaneLayout, PackedTs, TsLane};
use crate::types::{Dir, EdgeId, NodeId, TemporalEdge, Timestamp};
use crate::util::FxHashMap;

/// One entry of a node's event sequence `S_u`: an incident edge viewed
/// from the owning node (`e = (t, v, dir)` in the paper's notation).
///
/// This is the *materialised* form — storage is the SoA lane arena
/// described in the module docs; [`NodeEvents::get`] assembles an
/// `Event` on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp of the underlying edge.
    pub t: Timestamp,
    /// The endpoint on the other side (`e.v`).
    pub other: NodeId,
    /// Global edge id (chronological rank; see crate docs).
    pub edge: EdgeId,
    /// Direction relative to the owning node (`e.dir`).
    pub dir: Dir,
}

/// Borrowed SoA view over one node's event sequence `S_u`.
///
/// The three lanes (`ts`, `packed`, `edges`) are parallel slices of the
/// graph's event arena (see the module docs for the encoding). Hot
/// kernels read the lanes directly ([`NodeEvents::ts_lane`],
/// [`NodeEvents::packed_lane`]); everything else can use the indexed
/// accessors or iterate materialised [`Event`]s.
#[derive(Debug, Clone, Copy)]
pub struct NodeEvents<'a> {
    ts: TsLane<'a>,
    packed: &'a [u32],
    edges: &'a [EdgeId],
}

impl<'a> NodeEvents<'a> {
    /// `|S_u|` — the node's total degree.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// `true` if the node has no incident edges.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Materialise the `i`-th event.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> Event {
        Event {
            t: self.ts.get(i),
            other: self.packed[i] >> 1,
            edge: self.edges[i],
            dir: dir_of(self.packed[i]),
        }
    }

    /// Timestamp of the `i`-th event.
    #[inline]
    #[must_use]
    pub fn t(&self, i: usize) -> Timestamp {
        self.ts.get(i)
    }

    /// Far endpoint of the `i`-th event.
    #[inline]
    #[must_use]
    pub fn other(&self, i: usize) -> NodeId {
        self.packed[i] >> 1
    }

    /// Direction of the `i`-th event relative to the owning node.
    #[inline]
    #[must_use]
    pub fn dir(&self, i: usize) -> Dir {
        dir_of(self.packed[i])
    }

    /// Global edge id of the `i`-th event.
    #[inline]
    #[must_use]
    pub fn edge(&self, i: usize) -> EdgeId {
        self.edges[i]
    }

    /// Raw packed value `other << 1 | dir` of the `i`-th event.
    #[inline]
    #[must_use]
    pub fn packed(&self, i: usize) -> u32 {
        self.packed[i]
    }

    /// The timestamp lane (δ-window scans binary-search / stream this).
    /// Match on the returned [`TsLane`] once per node and stay
    /// monomorphised over [`crate::lanes::TsRead`] in hot loops.
    #[inline]
    #[must_use]
    pub fn ts_lane(&self) -> TsLane<'a> {
        self.ts
    }

    /// The packed topology lane (`other << 1 | dir` per event).
    #[inline]
    #[must_use]
    pub fn packed_lane(&self) -> &'a [u32] {
        self.packed
    }

    /// The global edge id lane.
    #[inline]
    #[must_use]
    pub fn edge_lane(&self) -> &'a [EdgeId] {
        self.edges
    }

    /// Sub-view over a contiguous range of event positions.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[inline]
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> NodeEvents<'a> {
        NodeEvents {
            ts: self.ts.slice(range.clone()),
            packed: &self.packed[range.clone()],
            edges: &self.edges[range],
        }
    }

    /// Iterate materialised [`Event`]s in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = Event> + 'a {
        let view = *self;
        (0..view.len()).map(move |i| view.get(i))
    }

    /// `slice::partition_point` over materialised events: the index of
    /// the first event for which `pred` is false (events for which it is
    /// true must form a prefix).
    #[inline]
    #[must_use]
    pub fn partition_point(&self, mut pred: impl FnMut(Event) -> bool) -> usize {
        // Binary search over positions; each probe materialises one event.
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.get(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl<'a> IntoIterator for NodeEvents<'a> {
    type Item = Event;
    type IntoIter = NodeEventsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        NodeEventsIter {
            view: self,
            next: 0,
        }
    }
}

/// Iterator over a [`NodeEvents`] view, yielding materialised [`Event`]s.
#[derive(Debug, Clone)]
pub struct NodeEventsIter<'a> {
    view: NodeEvents<'a>,
    next: usize,
}

impl Iterator for NodeEventsIter<'_> {
    type Item = Event;

    #[inline]
    fn next(&mut self) -> Option<Event> {
        if self.next < self.view.len() {
            let e = self.view.get(self.next);
            self.next += 1;
            Some(e)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.view.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NodeEventsIter<'_> {}

/// Decode the direction bit of a packed lane entry.
#[inline]
fn dir_of(packed: u32) -> Dir {
    if packed & 1 == 0 {
        Dir::Out
    } else {
        Dir::In
    }
}

/// One entry of a pair edge list `E(v, w)`, stored relative to the
/// *smaller* endpoint of the unordered pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairEvent {
    /// Timestamp of the underlying edge.
    pub t: Timestamp,
    /// Global edge id (chronological rank).
    pub edge: EdgeId,
    /// Direction relative to the smaller endpoint: `Out` means
    /// `lo -> hi`, `In` means `hi -> lo`.
    pub dir_from_lo: Dir,
}

impl PairEvent {
    /// Direction of this edge relative to the given endpoint.
    ///
    /// `endpoint_is_lo` must reflect whether the caller's reference node is
    /// the smaller endpoint of the pair.
    #[inline]
    #[must_use]
    pub fn dir_from(&self, endpoint_is_lo: bool) -> Dir {
        if endpoint_is_lo {
            self.dir_from_lo
        } else {
            self.dir_from_lo.flip()
        }
    }
}

/// Index over the unordered node pairs with at least one edge.
///
/// Layout mirrors CSR: `keys[i]` is the i-th pair `(lo, hi)`,
/// `events[offsets[i]..offsets[i+1]]` its time-ordered edges. `slot_of`
/// provides O(1) lookup from a pair to its slot (a single predictable
/// hash probe — measured faster here than a sorted-adjacency binary
/// search, whose log(d) compares mispredict on skewed graphs).
#[derive(Debug, Clone)]
pub struct PairIndex {
    keys: Box<[(NodeId, NodeId)]>,
    offsets: Box<[usize]>,
    events: Box<[PairEvent]>,
    slot_of: FxHashMap<(NodeId, NodeId), u32>,
    // Per-node 64-bit neighbour signatures: bit `sig(w)` is set iff some
    // edge connects the node to `w`. One register test filters the
    // (frequent) non-adjacent probes of the triangle kernel before they
    // pay for a hash lookup; a clear bit is an exact negative.
    blooms: Box<[u64]>,
}

impl PairIndex {
    /// Bloom bit of neighbour `w` (multiplicative mix into 0..64).
    #[inline]
    fn bloom_bit(w: NodeId) -> u64 {
        1u64 << (w.wrapping_mul(0x9E37_79B1) >> 26 & 63)
    }

    pub(crate) fn build(num_nodes: usize, edges: &[TemporalEdge]) -> PairIndex {
        // Edges are already in chronological (id) order, so a stable sort
        // by pair key keeps each pair's events time-ordered.
        let mut tagged: Vec<((NodeId, NodeId), PairEvent)> = edges
            .iter()
            .enumerate()
            .map(|(id, e)| {
                let (lo, hi) = e.unordered_pair();
                let dir_from_lo = if e.src == lo { Dir::Out } else { Dir::In };
                (
                    (lo, hi),
                    PairEvent {
                        t: e.t,
                        edge: id as EdgeId,
                        dir_from_lo,
                    },
                )
            })
            .collect();
        tagged.sort_by_key(|&(key, ev)| (key, ev.edge));

        let mut keys: Vec<(NodeId, NodeId)> = Vec::new();
        let mut offsets = Vec::with_capacity(tagged.len() / 2 + 2);
        let mut events = Vec::with_capacity(tagged.len());
        let mut slot_of = FxHashMap::default();
        let mut blooms = vec![0u64; num_nodes];
        for (key, ev) in tagged {
            if keys.last() != Some(&key) {
                slot_of.insert(key, keys.len() as u32);
                keys.push(key);
                offsets.push(events.len());
                let (lo, hi) = key;
                blooms[lo as usize] |= PairIndex::bloom_bit(hi);
                blooms[hi as usize] |= PairIndex::bloom_bit(lo);
            }
            events.push(ev);
        }
        offsets.push(events.len());

        PairIndex {
            keys: keys.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            events: events.into_boxed_slice(),
            slot_of,
            blooms: blooms.into_boxed_slice(),
        }
    }

    /// The 64-bit neighbour signature of node `v` (0 for nodes without
    /// edges). Test candidates with [`PairIndex::bloom_may_connect`].
    #[inline]
    #[must_use]
    pub fn bloom_of(&self, v: NodeId) -> u64 {
        self.blooms.get(v as usize).copied().unwrap_or(0)
    }

    /// `false` guarantees no edge connects the signature's node to `w`
    /// (`true` may be a false positive — follow with a real lookup).
    #[inline]
    #[must_use]
    pub fn bloom_may_connect(bloom: u64, w: NodeId) -> bool {
        bloom & PairIndex::bloom_bit(w) != 0
    }

    /// Slot of the unordered pair `{a, b}`, or `None` if no edge connects
    /// them.
    #[inline]
    #[must_use]
    pub fn slot_between(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.slot_of.get(&key).copied()
    }

    /// Number of distinct unordered pairs with at least one edge.
    #[inline]
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.keys.len()
    }

    /// The `i`-th pair key `(lo, hi)`.
    #[inline]
    #[must_use]
    pub fn key(&self, slot: usize) -> (NodeId, NodeId) {
        self.keys[slot]
    }

    /// Time-ordered events of the `i`-th pair.
    #[inline]
    #[must_use]
    pub fn events_of_slot(&self, slot: usize) -> &[PairEvent] {
        &self.events[self.offsets[slot]..self.offsets[slot + 1]]
    }

    /// Time-ordered events between `a` and `b` (either order); empty slice
    /// if the pair has no edges.
    #[inline]
    #[must_use]
    pub fn events_between(&self, a: NodeId, b: NodeId) -> &[PairEvent] {
        match self.slot_between(a, b) {
            Some(slot) => self.events_of_slot(slot as usize),
            None => &[],
        }
    }
}

/// Timestamp-lane storage: raw slice or per-run bit-packed deltas. The
/// other two lanes are cheap (4 bytes/event each) and stay raw in both
/// layouts.
#[derive(Debug, Clone)]
enum TsStore {
    Raw(Box<[Timestamp]>),
    Packed(PackedTs),
}

impl TsStore {
    /// The lane view of node `u`'s run `node_offsets[u]..node_offsets[u+1]`.
    #[inline]
    fn lane(&self, u: usize, lo: usize, hi: usize) -> TsLane<'_> {
        match self {
            TsStore::Raw(ts) => TsLane::Raw(&ts[lo..hi]),
            TsStore::Packed(p) => TsLane::Packed(p.run(u, hi - lo)),
        }
    }

    fn layout(&self) -> LaneLayout {
        match self {
            TsStore::Raw(_) => LaneLayout::Raw,
            TsStore::Packed(_) => LaneLayout::Compressed,
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            TsStore::Raw(ts) => ts.len() * std::mem::size_of::<Timestamp>(),
            TsStore::Packed(p) => p.heap_bytes(),
        }
    }
}

/// An immutable temporal graph, optimised for motif counting.
///
/// Construct with [`crate::GraphBuilder`] (or the
/// [`TemporalGraph::from_edges`] shortcut). Nodes are `0..num_nodes`; edge
/// ids are chronological ranks under the `(t, input_position)` total order.
#[derive(Debug, Clone)]
pub struct TemporalGraph {
    num_nodes: usize,
    edges: Box<[TemporalEdge]>,
    node_offsets: Box<[usize]>,
    // SoA event arena — see the module docs for the lane layout.
    ev_ts: TsStore,
    ev_packed: Box<[u32]>,
    ev_edge: Box<[EdgeId]>,
    pairs: PairIndex,
}

impl TemporalGraph {
    /// Build from raw edges with default options (self-loops stripped,
    /// node ids taken literally). See [`crate::GraphBuilder`] for control.
    #[must_use]
    pub fn from_edges(edges: Vec<TemporalEdge>) -> TemporalGraph {
        let mut b = crate::GraphBuilder::new();
        b.extend(edges);
        b.build()
    }

    /// Internal constructor used by the builder. `edges` must be sorted by
    /// `(t, original position)` and free of self-loops, and every endpoint
    /// must be `< num_nodes`.
    pub(crate) fn from_sorted_edges(num_nodes: usize, edges: Vec<TemporalEdge>) -> TemporalGraph {
        TemporalGraph::from_sorted_edges_with_threads(num_nodes, edges, 1)
    }

    /// Like [`TemporalGraph::from_sorted_edges`], building the event
    /// lanes with up to `threads` worker threads (per-shard lane fills
    /// over disjoint node ranges, merged in node order — each event slot
    /// is computed from the same edge either way, so the result is
    /// bit-identical to the sequential build).
    pub(crate) fn from_sorted_edges_with_threads(
        num_nodes: usize,
        edges: Vec<TemporalEdge>,
        threads: usize,
    ) -> TemporalGraph {
        assert!(
            edges.len() <= u32::MAX as usize,
            "edge count exceeds u32 id space"
        );
        assert!(
            num_nodes <= (u32::MAX >> 1) as usize,
            "node count exceeds the packed-lane id space (2^31 - 1)"
        );
        debug_assert!(edges.windows(2).all(|w| w[0].t <= w[1].t));

        // Per-node degree counting pass, then prefix sums, then a fill pass
        // in edge-id order so each S_u comes out time-ordered.
        let mut counts = vec![0usize; num_nodes + 1];
        for e in &edges {
            counts[e.src as usize + 1] += 1;
            counts[e.dst as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let node_offsets = counts.clone().into_boxed_slice();

        let n_events = edges.len() * 2;
        let mut ev_ts = vec![0 as Timestamp; n_events];
        let mut ev_packed = vec![0u32; n_events];
        let mut ev_edge = vec![0 as EdgeId; n_events];
        if threads > 1 && num_nodes > 1 {
            fill_lanes_parallel(
                &edges,
                &node_offsets,
                threads,
                &mut ev_ts,
                &mut ev_packed,
                &mut ev_edge,
            );
        } else {
            let mut cursors = counts;
            for (id, e) in edges.iter().enumerate() {
                let id = id as EdgeId;
                let s = &mut cursors[e.src as usize];
                ev_ts[*s] = e.t;
                ev_packed[*s] = (e.dst << 1) | Dir::Out as u32;
                ev_edge[*s] = id;
                *s += 1;
                let d = &mut cursors[e.dst as usize];
                ev_ts[*d] = e.t;
                ev_packed[*d] = (e.src << 1) | Dir::In as u32;
                ev_edge[*d] = id;
                *d += 1;
            }
        }

        let pairs = PairIndex::build(num_nodes, &edges);

        TemporalGraph {
            num_nodes,
            edges: edges.into_boxed_slice(),
            node_offsets,
            ev_ts: TsStore::Raw(ev_ts.into_boxed_slice()),
            ev_packed: ev_packed.into_boxed_slice(),
            ev_edge: ev_edge.into_boxed_slice(),
            pairs,
        }
    }

    /// Build directly from an already-chronological edge list with an
    /// explicit node-id space (so sub-graphs keep global node ids even
    /// when high-id nodes have no edges in the slice). This is the
    /// entry point the out-of-core chunk driver uses: a chunk cut from a
    /// sorted edge stream is itself sorted, and re-sorting (or
    /// re-deriving `num_nodes` from the slice) would break the
    /// order-isomorphism between chunk-local and global edge ids.
    ///
    /// # Panics
    /// Panics if `edges` is not sorted by timestamp, contains a
    /// self-loop, or references a node `>= num_nodes`.
    #[must_use]
    pub fn from_chronological_edges(num_nodes: usize, edges: Vec<TemporalEdge>) -> TemporalGraph {
        assert!(
            edges.windows(2).all(|w| w[0].t <= w[1].t),
            "edges must be sorted by timestamp"
        );
        for e in &edges {
            assert!(!e.is_self_loop(), "self-loop {e} not allowed");
            assert!(
                (e.src as usize) < num_nodes && (e.dst as usize) < num_nodes,
                "edge {e} references a node >= num_nodes ({num_nodes})"
            );
        }
        TemporalGraph::from_sorted_edges(num_nodes, edges)
    }

    /// Number of nodes (`|V|`).
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of temporal edges (`|E|`).
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges in chronological order; the slice index is the edge id.
    #[inline]
    #[must_use]
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// The edge with the given id.
    #[inline]
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> TemporalEdge {
        self.edges[id as usize]
    }

    /// The time-ordered event sequence `S_u` of node `u`, as a borrowed
    /// SoA view over the lane arena.
    #[inline]
    #[must_use]
    pub fn node_events(&self, u: NodeId) -> NodeEvents<'_> {
        let lo = self.node_offsets[u as usize];
        let hi = self.node_offsets[u as usize + 1];
        NodeEvents {
            ts: self.ev_ts.lane(u as usize, lo, hi),
            packed: &self.ev_packed[lo..hi],
            edges: &self.ev_edge[lo..hi],
        }
    }

    /// The storage layout of the timestamp lane.
    #[inline]
    #[must_use]
    pub fn lane_layout(&self) -> LaneLayout {
        self.ev_ts.layout()
    }

    /// Re-encode the timestamp lane into `layout`. Queries and counts
    /// are bit-identical across layouts (differentially tested); only
    /// the resident footprint and decode cost change. A no-op when the
    /// graph already uses `layout`.
    #[must_use]
    pub fn into_lane_layout(mut self, layout: LaneLayout) -> TemporalGraph {
        self.ev_ts = match (self.ev_ts, layout) {
            (TsStore::Raw(ts), LaneLayout::Compressed) => {
                TsStore::Packed(PackedTs::encode(&self.node_offsets, &ts))
            }
            (TsStore::Packed(p), LaneLayout::Raw) => {
                let mut ts = vec![0 as Timestamp; self.ev_packed.len()];
                for u in 0..self.num_nodes {
                    let (lo, hi) = (self.node_offsets[u], self.node_offsets[u + 1]);
                    let lane = TsLane::Packed(p.run(u, hi - lo));
                    for (i, slot) in ts[lo..hi].iter_mut().enumerate() {
                        *slot = lane.get(i);
                    }
                }
                TsStore::Raw(ts.into_boxed_slice())
            }
            (store, _) => store,
        };
        self
    }

    /// Heap bytes held by the three event lanes (timestamp store +
    /// packed topology + edge ids). This is the quantity the out-of-core
    /// chunk budget bounds; the edge list and pair index are accounted
    /// separately.
    #[must_use]
    pub fn resident_lane_bytes(&self) -> usize {
        self.ev_ts.heap_bytes()
            + self.ev_packed.len() * std::mem::size_of::<u32>()
            + self.ev_edge.len() * std::mem::size_of::<EdgeId>()
    }

    /// Total degree of `u` (in-degree + out-degree, counting multi-edges) —
    /// i.e. `|S_u|`, the paper's `d_i`.
    #[inline]
    #[must_use]
    pub fn degree(&self, u: NodeId) -> usize {
        self.node_offsets[u as usize + 1] - self.node_offsets[u as usize]
    }

    /// The pair index over `E(v, w)` lists.
    #[inline]
    #[must_use]
    pub fn pairs(&self) -> &PairIndex {
        &self.pairs
    }

    /// Time-ordered edges between `a` and `b`, both directions.
    #[inline]
    #[must_use]
    pub fn pair_events(&self, a: NodeId, b: NodeId) -> &[PairEvent] {
        self.pairs.events_between(a, b)
    }

    /// Earliest timestamp, or `None` for an empty graph.
    #[inline]
    #[must_use]
    pub fn min_time(&self) -> Option<Timestamp> {
        self.edges.first().map(|e| e.t)
    }

    /// Latest timestamp, or `None` for an empty graph.
    #[inline]
    #[must_use]
    pub fn max_time(&self) -> Option<Timestamp> {
        self.edges.last().map(|e| e.t)
    }

    /// `max_time - min_time`, or 0 for graphs with < 2 edges.
    #[inline]
    #[must_use]
    pub fn time_span(&self) -> Timestamp {
        match (self.min_time(), self.max_time()) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes as NodeId
    }

    /// A stable 64-bit content fingerprint of the graph.
    ///
    /// Hashes the node count and the SoA event lanes (per-node offsets,
    /// timestamp lane, packed topology lane) through a splitmix64
    /// chain. The lanes are a deterministic function of the sorted edge
    /// list, so rebuilding from the same edges — including
    /// `TemporalGraph::from_edges(g.edges().to_vec())` — reproduces the
    /// fingerprint bit-for-bit, while any change to an endpoint, a
    /// direction, a timestamp, or the node count changes it. Identity
    /// is *content*, not isomorphism class: relabelling nodes yields a
    /// different fingerprint.
    ///
    /// `hare-serve` uses this as the dataset half of its result-cache
    /// key, so cached query results can never be served for a graph
    /// with different content under a reused name.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use crate::util::splitmix64_mix as mix;
        // Tag the hash domain so an empty graph is not the zero state.
        let mut h = mix(0x6861_7265_5F66_7030, self.num_nodes as u64);
        for &off in self.node_offsets.iter() {
            h = mix(h, off as u64);
        }
        // Walk the lanes per node run (their concatenation is the global
        // event order), decoding timestamps through the lane view so the
        // fingerprint is a function of content, not of [`LaneLayout`].
        for u in 0..self.num_nodes {
            let (lo, hi) = (self.node_offsets[u], self.node_offsets[u + 1]);
            let ts = self.ev_ts.lane(u, lo, hi);
            for (i, &p) in self.ev_packed[lo..hi].iter().enumerate() {
                h = mix(mix(h, ts.get(i) as u64), u64::from(p));
            }
        }
        h
    }
}

/// Parallel lane fill: shard the node-id space into contiguous ranges of
/// roughly equal event mass, then let one thread per shard scan the full
/// edge list (read-only) and write only its own disjoint arena region.
/// Every event slot receives exactly the value the sequential fill would
/// write (the slot position depends only on `node_offsets` and the
/// edge's rank among its node's events, both of which are fixed before
/// the fill), so the build is bit-identical to sequential.
fn fill_lanes_parallel(
    edges: &[TemporalEdge],
    node_offsets: &[usize],
    threads: usize,
    ev_ts: &mut [Timestamp],
    ev_packed: &mut [u32],
    ev_edge: &mut [EdgeId],
) {
    let num_nodes = node_offsets.len() - 1;
    let n_events = ev_ts.len();
    // Shard boundaries on node ids, balanced by event count.
    let shards = threads.min(num_nodes).max(1);
    let mut bounds = Vec::with_capacity(shards + 1);
    bounds.push(0usize);
    for s in 1..shards {
        let target = n_events * s / shards;
        let cut = node_offsets.partition_point(|&off| off < target);
        let cut = cut.clamp(*bounds.last().expect("non-empty"), num_nodes);
        bounds.push(cut);
    }
    bounds.push(num_nodes);

    std::thread::scope(|scope| {
        let mut ts_rest = ev_ts;
        let mut packed_rest = ev_packed;
        let mut edge_rest = ev_edge;
        for w in bounds.windows(2) {
            let (n0, n1) = (w[0], w[1]);
            let shard_events = node_offsets[n1] - node_offsets[n0];
            let (ts_own, ts_next) = ts_rest.split_at_mut(shard_events);
            let (packed_own, packed_next) = packed_rest.split_at_mut(shard_events);
            let (edge_own, edge_next) = edge_rest.split_at_mut(shard_events);
            ts_rest = ts_next;
            packed_rest = packed_next;
            edge_rest = edge_next;
            if n0 == n1 {
                continue;
            }
            scope.spawn(move || {
                let base = node_offsets[n0];
                // Cursors relative to this shard's arena region.
                let mut cursors: Vec<usize> =
                    node_offsets[n0..n1].iter().map(|&off| off - base).collect();
                let node_range = (n0 as NodeId)..(n1 as NodeId);
                for (id, e) in edges.iter().enumerate() {
                    let id = id as EdgeId;
                    if node_range.contains(&e.src) {
                        let s = &mut cursors[(e.src as usize) - n0];
                        ts_own[*s] = e.t;
                        packed_own[*s] = (e.dst << 1) | Dir::Out as u32;
                        edge_own[*s] = id;
                        *s += 1;
                    }
                    if node_range.contains(&e.dst) {
                        let d = &mut cursors[(e.dst as usize) - n0];
                        ts_own[*d] = e.t;
                        packed_own[*d] = (e.src << 1) | Dir::In as u32;
                        edge_own[*d] = id;
                        *d += 1;
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TemporalGraph {
        // Fig. 1 of the paper: a=0, b=1, c=2, d=3, e=4.
        TemporalGraph::from_edges(vec![
            TemporalEdge::new(4, 3, 1),
            TemporalEdge::new(0, 2, 4),
            TemporalEdge::new(4, 2, 6),
            TemporalEdge::new(0, 2, 8),
            TemporalEdge::new(3, 0, 9),
            TemporalEdge::new(3, 2, 10),
            TemporalEdge::new(0, 1, 11),
            TemporalEdge::new(3, 4, 14),
            TemporalEdge::new(0, 2, 15),
            TemporalEdge::new(2, 3, 17),
            TemporalEdge::new(4, 3, 18),
            TemporalEdge::new(3, 4, 21),
        ])
    }

    #[test]
    fn toy_graph_shape() {
        let g = toy();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.min_time(), Some(1));
        assert_eq!(g.max_time(), Some(21));
        assert_eq!(g.time_span(), 20);
    }

    #[test]
    fn node_sequence_matches_paper_example() {
        // §IV.A.3: S_a = <(4s,c,o),(8s,c,o),(9s,d,in),(11s,b,o),(15s,c,o)>
        let g = toy();
        let sa: Vec<_> = g
            .node_events(0)
            .iter()
            .map(|e| (e.t, e.other, e.dir))
            .collect();
        assert_eq!(
            sa,
            vec![
                (4, 2, Dir::Out),
                (8, 2, Dir::Out),
                (9, 3, Dir::In),
                (11, 1, Dir::Out),
                (15, 2, Dir::Out),
            ]
        );
        // §IV.B.2: S_e = <(1s,d,o),(6s,c,o),(14s,d,in),(18s,d,o),(21s,d,in)>
        let se: Vec<_> = g
            .node_events(4)
            .iter()
            .map(|e| (e.t, e.other, e.dir))
            .collect();
        assert_eq!(
            se,
            vec![
                (1, 3, Dir::Out),
                (6, 2, Dir::Out),
                (14, 3, Dir::In),
                (18, 3, Dir::Out),
                (21, 3, Dir::In),
            ]
        );
    }

    #[test]
    fn sequences_are_time_ordered() {
        let g = toy();
        for u in g.node_ids() {
            let s = g.node_events(u);
            assert!((1..s.len()).all(|i| s.t(i - 1) <= s.t(i)), "S_{u} unsorted");
            assert!(s.edge_lane().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn node_events_view_accessors_agree() {
        let g = toy();
        for u in g.node_ids() {
            let s = g.node_events(u);
            assert_eq!(s.len(), g.degree(u));
            assert_eq!(s.is_empty(), g.degree(u) == 0);
            for (i, ev) in s.iter().enumerate() {
                assert_eq!(ev, s.get(i));
                assert_eq!(ev.t, s.t(i));
                assert_eq!(ev.other, s.other(i));
                assert_eq!(ev.dir, s.dir(i));
                assert_eq!(ev.edge, s.edge(i));
                assert_eq!(s.packed(i), (ev.other << 1) | ev.dir as u32);
            }
            // Lanes are parallel and equally long.
            assert_eq!(s.ts_lane().len(), s.len());
            assert_eq!(s.packed_lane().len(), s.len());
            assert_eq!(s.edge_lane().len(), s.len());
        }
    }

    #[test]
    fn node_events_slice_and_partition_point() {
        let g = toy();
        let s = g.node_events(0);
        let tail = s.slice(2..s.len());
        assert_eq!(tail.len(), s.len() - 2);
        assert_eq!(tail.get(0), s.get(2));
        // partition_point agrees with a linear scan on the same predicate.
        for cut in [0, 5, 9, 12, 100] {
            let via_view = s.partition_point(|e| e.t < cut);
            let via_scan = s.iter().take_while(|e| e.t < cut).count();
            assert_eq!(via_view, via_scan, "cut={cut}");
        }
        let it = s.into_iter();
        assert_eq!(it.len(), s.len());
        assert_eq!(it.count(), s.len());
    }

    #[test]
    fn degrees_sum_to_twice_edges() {
        let g = toy();
        let total: usize = g.node_ids().map(|u| g.degree(u)).sum();
        assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn pair_index_matches_paper_example() {
        // §IV.B.2: E(v_c, v_d) = {(v_d, v_c, 10s), (v_c, v_d, 17s)}
        let g = toy();
        let evs = g.pair_events(2, 3);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].t, 10);
        assert_eq!(evs[0].dir_from_lo, Dir::In); // d -> c means hi -> lo
        assert_eq!(evs[1].t, 17);
        assert_eq!(evs[1].dir_from_lo, Dir::Out); // c -> d means lo -> hi

        // Symmetric query.
        assert_eq!(g.pair_events(3, 2), evs);
        // Direction relative to each endpoint.
        assert_eq!(evs[0].dir_from(true), Dir::In); // from c's view: inward
        assert_eq!(evs[0].dir_from(false), Dir::Out); // from d's view: outward
    }

    #[test]
    fn pair_index_empty_for_unconnected_pair() {
        let g = toy();
        assert!(g.pair_events(1, 4).is_empty());
    }

    #[test]
    fn pair_events_time_ordered() {
        let g = toy();
        let p = g.pairs();
        let mut seen = 0;
        for slot in 0..p.num_pairs() {
            let evs = p.events_of_slot(slot);
            assert!(!evs.is_empty());
            assert!(evs.windows(2).all(|w| w[0].edge < w[1].edge));
            assert!(evs.windows(2).all(|w| w[0].t <= w[1].t));
            seen += evs.len();
        }
        assert_eq!(seen, g.num_edges());
    }

    #[test]
    fn edge_ids_are_chronological_ranks() {
        let g = toy();
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(g.edge(i as EdgeId), *e);
        }
        assert!(g.edges().windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::from_edges(vec![]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.min_time(), None);
        assert_eq!(g.time_span(), 0);
        assert_eq!(g.pairs().num_pairs(), 0);
    }

    #[test]
    fn fingerprint_is_pinned_and_rebuild_stable() {
        let g = toy();
        // Pinned value: the fingerprint is a persisted cache key
        // (hare-serve result cache), so accidental changes to the hash
        // chain must fail loudly here.
        assert_eq!(g.fingerprint(), 0x994A_8322_3AD1_5D48);
        // A node-id-preserving rebuild from the same edges is identical.
        let rebuilt = TemporalGraph::from_edges(g.edges().to_vec());
        assert_eq!(rebuilt.fingerprint(), g.fingerprint());
    }

    #[test]
    fn fingerprint_separates_content_changes() {
        let base = vec![
            TemporalEdge::new(0, 1, 10),
            TemporalEdge::new(1, 2, 12),
            TemporalEdge::new(2, 0, 14),
        ];
        let fp = |edges: Vec<TemporalEdge>| TemporalGraph::from_edges(edges).fingerprint();
        let reference = fp(base.clone());
        // Timestamp, endpoint, direction, and multiplicity changes all
        // move the fingerprint.
        let mut shifted = base.clone();
        shifted[1].t = 13;
        assert_ne!(fp(shifted), reference);
        let mut rerouted = base.clone();
        rerouted[2] = TemporalEdge::new(2, 1, 14);
        assert_ne!(fp(rerouted), reference);
        let mut flipped = base.clone();
        flipped[0] = TemporalEdge::new(1, 0, 10);
        assert_ne!(fp(flipped), reference);
        let mut duplicated = base.clone();
        duplicated.push(TemporalEdge::new(0, 1, 10));
        assert_ne!(fp(duplicated), reference);
        // Relabelling nodes changes content identity too.
        let relabelled = vec![
            TemporalEdge::new(1, 0, 10),
            TemporalEdge::new(0, 2, 12),
            TemporalEdge::new(2, 1, 14),
        ];
        assert_ne!(fp(relabelled), reference);
        // Empty graphs fingerprint deterministically without colliding
        // with a 1-node graph.
        assert_eq!(
            TemporalGraph::from_edges(vec![]).fingerprint(),
            TemporalGraph::from_edges(vec![]).fingerprint()
        );
    }

    #[test]
    fn compressed_layout_is_bit_identical_to_raw() {
        let g = toy();
        let c = g.clone().into_lane_layout(LaneLayout::Compressed);
        assert_eq!(g.lane_layout(), LaneLayout::Raw);
        assert_eq!(c.lane_layout(), LaneLayout::Compressed);
        // Every event accessor agrees, including sliced views.
        for u in g.node_ids() {
            let (a, b) = (g.node_events(u), c.node_events(u));
            assert_eq!(a.len(), b.len());
            assert!(b.ts_lane().as_raw().is_none() || b.is_empty());
            for i in 0..a.len() {
                assert_eq!(a.get(i), b.get(i), "node {u} event {i}");
            }
            if a.len() >= 2 {
                let (sa, sb) = (a.slice(1..a.len()), b.slice(1..b.len()));
                assert_eq!(sa.get(0), sb.get(0));
            }
            for cut in [0, 7, 15, 30] {
                assert_eq!(
                    a.partition_point(|e| e.t < cut),
                    b.partition_point(|e| e.t < cut)
                );
            }
        }
        // The fingerprint is layout-independent, and the round trip back
        // to raw is lossless.
        assert_eq!(c.fingerprint(), g.fingerprint());
        let back = c.into_lane_layout(LaneLayout::Raw);
        assert_eq!(back.lane_layout(), LaneLayout::Raw);
        assert_eq!(back.fingerprint(), g.fingerprint());
    }

    #[test]
    fn lane_layout_conversion_is_idempotent_and_tracks_bytes() {
        let g = toy();
        let raw_bytes = g.resident_lane_bytes();
        assert_eq!(raw_bytes, 2 * g.num_edges() * (8 + 4 + 4));
        let same = g.clone().into_lane_layout(LaneLayout::Raw);
        assert_eq!(same.resident_lane_bytes(), raw_bytes);
        let c = g.into_lane_layout(LaneLayout::Compressed);
        // The toy spans 21 ticks: deltas pack into ≤ 5 bits, so the ts
        // store shrinks even with per-node metadata.
        assert!(c.resident_lane_bytes() < raw_bytes);
        let still = c.clone().into_lane_layout(LaneLayout::Compressed);
        assert_eq!(still.resident_lane_bytes(), c.resident_lane_bytes());
    }

    #[test]
    fn parallel_lane_build_is_bit_identical() {
        let edges: Vec<TemporalEdge> = (0..500)
            .map(|i| TemporalEdge::new(i % 23, (i * 7 + 1) % 23, (i as i64 * 13) % 97))
            .filter(|e| !e.is_self_loop())
            .collect();
        let mut sorted = edges;
        sorted.sort_by_key(|e| e.t);
        let seq = TemporalGraph::from_sorted_edges(23, sorted.clone());
        for threads in [2, 3, 4, 8, 64] {
            let par = TemporalGraph::from_sorted_edges_with_threads(23, sorted.clone(), threads);
            assert_eq!(par.fingerprint(), seq.fingerprint(), "threads={threads}");
            for u in seq.node_ids() {
                let (a, b) = (seq.node_events(u), par.node_events(u));
                assert_eq!(a.len(), b.len());
                for i in 0..a.len() {
                    assert_eq!(a.get(i), b.get(i), "threads={threads} node {u}");
                }
            }
        }
    }

    #[test]
    fn from_chronological_edges_keeps_global_ids() {
        // A "chunk" missing the high-id node still reserves its id space.
        let g = TemporalGraph::from_chronological_edges(
            10,
            vec![TemporalEdge::new(1, 2, 5), TemporalEdge::new(2, 9, 7)],
        );
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    #[should_panic(expected = "sorted by timestamp")]
    fn from_chronological_edges_rejects_unsorted() {
        let _ = TemporalGraph::from_chronological_edges(
            3,
            vec![TemporalEdge::new(0, 1, 9), TemporalEdge::new(1, 2, 3)],
        );
    }

    #[test]
    #[should_panic(expected = "num_nodes")]
    fn from_chronological_edges_rejects_out_of_range_node() {
        let _ = TemporalGraph::from_chronological_edges(2, vec![TemporalEdge::new(0, 5, 1)]);
    }

    #[test]
    fn timestamp_ties_keep_input_order() {
        let g = TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 5),
            TemporalEdge::new(1, 2, 5),
            TemporalEdge::new(2, 0, 5),
        ]);
        assert_eq!(g.edge(0), TemporalEdge::new(0, 1, 5));
        assert_eq!(g.edge(1), TemporalEdge::new(1, 2, 5));
        assert_eq!(g.edge(2), TemporalEdge::new(2, 0, 5));
    }
}
