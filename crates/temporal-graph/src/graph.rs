//! The immutable [`TemporalGraph`] representation and its two indexes.
//!
//! Every counting algorithm in the paper is driven by one or both of:
//!
//! 1. **Node event sequences** `S_u` (§IV.A.3): for each node `u`, the
//!    time-ordered list of edges incident to `u`, each seen as
//!    `(t, other, dir)` relative to `u`. Stored as one CSR-style arena
//!    (`node_offsets` + `events`) so a sequence is a contiguous slice.
//! 2. **Pair edge lists** `E(v, w)` (§IV.B): for each unordered node pair,
//!    the time-ordered list of edges between them (both directions).
//!    FAST-Tri binary-searches these within the δ window, which is the
//!    "implementation trick" the paper uses to bound `ξ` by `d^δ`.

use crate::types::{Dir, EdgeId, NodeId, TemporalEdge, Timestamp};
use crate::util::FxHashMap;

/// One entry of a node's event sequence `S_u`: an incident edge viewed
/// from the owning node (`e = (t, v, dir)` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp of the underlying edge.
    pub t: Timestamp,
    /// The endpoint on the other side (`e.v`).
    pub other: NodeId,
    /// Global edge id (chronological rank; see crate docs).
    pub edge: EdgeId,
    /// Direction relative to the owning node (`e.dir`).
    pub dir: Dir,
}

/// One entry of a pair edge list `E(v, w)`, stored relative to the
/// *smaller* endpoint of the unordered pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairEvent {
    /// Timestamp of the underlying edge.
    pub t: Timestamp,
    /// Global edge id (chronological rank).
    pub edge: EdgeId,
    /// Direction relative to the smaller endpoint: `Out` means
    /// `lo -> hi`, `In` means `hi -> lo`.
    pub dir_from_lo: Dir,
}

impl PairEvent {
    /// Direction of this edge relative to the given endpoint.
    ///
    /// `endpoint_is_lo` must reflect whether the caller's reference node is
    /// the smaller endpoint of the pair.
    #[inline]
    #[must_use]
    pub fn dir_from(&self, endpoint_is_lo: bool) -> Dir {
        if endpoint_is_lo {
            self.dir_from_lo
        } else {
            self.dir_from_lo.flip()
        }
    }
}

/// Index over the unordered node pairs with at least one edge.
///
/// Layout mirrors CSR: `keys[i]` is the i-th pair `(lo, hi)`,
/// `events[offsets[i]..offsets[i+1]]` its time-ordered edges. `slot_of`
/// provides O(1) lookup from a pair to its slot.
#[derive(Debug, Clone)]
pub struct PairIndex {
    keys: Box<[(NodeId, NodeId)]>,
    offsets: Box<[usize]>,
    events: Box<[PairEvent]>,
    slot_of: FxHashMap<(NodeId, NodeId), u32>,
}

impl PairIndex {
    pub(crate) fn build(edges: &[TemporalEdge]) -> PairIndex {
        // Edges are already in chronological (id) order, so a stable sort
        // by pair key keeps each pair's events time-ordered.
        let mut tagged: Vec<((NodeId, NodeId), PairEvent)> = edges
            .iter()
            .enumerate()
            .map(|(id, e)| {
                let (lo, hi) = e.unordered_pair();
                let dir_from_lo = if e.src == lo { Dir::Out } else { Dir::In };
                (
                    (lo, hi),
                    PairEvent {
                        t: e.t,
                        edge: id as EdgeId,
                        dir_from_lo,
                    },
                )
            })
            .collect();
        tagged.sort_by_key(|&(key, ev)| (key, ev.edge));

        let mut keys = Vec::new();
        let mut offsets = Vec::with_capacity(tagged.len() / 2 + 2);
        let mut events = Vec::with_capacity(tagged.len());
        let mut slot_of = FxHashMap::default();
        for (key, ev) in tagged {
            if keys.last() != Some(&key) {
                slot_of.insert(key, keys.len() as u32);
                keys.push(key);
                offsets.push(events.len());
            }
            events.push(ev);
        }
        offsets.push(events.len());

        PairIndex {
            keys: keys.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            events: events.into_boxed_slice(),
            slot_of,
        }
    }

    /// Number of distinct unordered pairs with at least one edge.
    #[inline]
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.keys.len()
    }

    /// The `i`-th pair key `(lo, hi)`.
    #[inline]
    #[must_use]
    pub fn key(&self, slot: usize) -> (NodeId, NodeId) {
        self.keys[slot]
    }

    /// Time-ordered events of the `i`-th pair.
    #[inline]
    #[must_use]
    pub fn events_of_slot(&self, slot: usize) -> &[PairEvent] {
        &self.events[self.offsets[slot]..self.offsets[slot + 1]]
    }

    /// Time-ordered events between `a` and `b` (either order); empty slice
    /// if the pair has no edges.
    #[inline]
    #[must_use]
    pub fn events_between(&self, a: NodeId, b: NodeId) -> &[PairEvent] {
        let key = if a <= b { (a, b) } else { (b, a) };
        match self.slot_of.get(&key) {
            Some(&slot) => self.events_of_slot(slot as usize),
            None => &[],
        }
    }
}

/// An immutable temporal graph, optimised for motif counting.
///
/// Construct with [`crate::GraphBuilder`] (or the
/// [`TemporalGraph::from_edges`] shortcut). Nodes are `0..num_nodes`; edge
/// ids are chronological ranks under the `(t, input_position)` total order.
#[derive(Debug, Clone)]
pub struct TemporalGraph {
    num_nodes: usize,
    edges: Box<[TemporalEdge]>,
    node_offsets: Box<[usize]>,
    events: Box<[Event]>,
    pairs: PairIndex,
}

impl TemporalGraph {
    /// Build from raw edges with default options (self-loops stripped,
    /// node ids taken literally). See [`crate::GraphBuilder`] for control.
    #[must_use]
    pub fn from_edges(edges: Vec<TemporalEdge>) -> TemporalGraph {
        let mut b = crate::GraphBuilder::new();
        b.extend(edges);
        b.build()
    }

    /// Internal constructor used by the builder. `edges` must be sorted by
    /// `(t, original position)` and free of self-loops, and every endpoint
    /// must be `< num_nodes`.
    pub(crate) fn from_sorted_edges(num_nodes: usize, edges: Vec<TemporalEdge>) -> TemporalGraph {
        assert!(
            edges.len() <= u32::MAX as usize,
            "edge count exceeds u32 id space"
        );
        debug_assert!(edges.windows(2).all(|w| w[0].t <= w[1].t));

        // Per-node degree counting pass, then prefix sums, then a fill pass
        // in edge-id order so each S_u comes out time-ordered.
        let mut counts = vec![0usize; num_nodes + 1];
        for e in &edges {
            counts[e.src as usize + 1] += 1;
            counts[e.dst as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let node_offsets = counts.clone().into_boxed_slice();

        let mut events = vec![
            Event {
                t: 0,
                other: 0,
                edge: 0,
                dir: Dir::Out
            };
            edges.len() * 2
        ];
        let mut cursors = counts;
        for (id, e) in edges.iter().enumerate() {
            let id = id as EdgeId;
            let s = &mut cursors[e.src as usize];
            events[*s] = Event {
                t: e.t,
                other: e.dst,
                edge: id,
                dir: Dir::Out,
            };
            *s += 1;
            let d = &mut cursors[e.dst as usize];
            events[*d] = Event {
                t: e.t,
                other: e.src,
                edge: id,
                dir: Dir::In,
            };
            *d += 1;
        }

        let pairs = PairIndex::build(&edges);

        TemporalGraph {
            num_nodes,
            edges: edges.into_boxed_slice(),
            node_offsets,
            events: events.into_boxed_slice(),
            pairs,
        }
    }

    /// Number of nodes (`|V|`).
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of temporal edges (`|E|`).
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges in chronological order; the slice index is the edge id.
    #[inline]
    #[must_use]
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// The edge with the given id.
    #[inline]
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> TemporalEdge {
        self.edges[id as usize]
    }

    /// The time-ordered event sequence `S_u` of node `u`.
    #[inline]
    #[must_use]
    pub fn node_events(&self, u: NodeId) -> &[Event] {
        &self.events[self.node_offsets[u as usize]..self.node_offsets[u as usize + 1]]
    }

    /// Total degree of `u` (in-degree + out-degree, counting multi-edges) —
    /// i.e. `|S_u|`, the paper's `d_i`.
    #[inline]
    #[must_use]
    pub fn degree(&self, u: NodeId) -> usize {
        self.node_offsets[u as usize + 1] - self.node_offsets[u as usize]
    }

    /// The pair index over `E(v, w)` lists.
    #[inline]
    #[must_use]
    pub fn pairs(&self) -> &PairIndex {
        &self.pairs
    }

    /// Time-ordered edges between `a` and `b`, both directions.
    #[inline]
    #[must_use]
    pub fn pair_events(&self, a: NodeId, b: NodeId) -> &[PairEvent] {
        self.pairs.events_between(a, b)
    }

    /// Earliest timestamp, or `None` for an empty graph.
    #[inline]
    #[must_use]
    pub fn min_time(&self) -> Option<Timestamp> {
        self.edges.first().map(|e| e.t)
    }

    /// Latest timestamp, or `None` for an empty graph.
    #[inline]
    #[must_use]
    pub fn max_time(&self) -> Option<Timestamp> {
        self.edges.last().map(|e| e.t)
    }

    /// `max_time - min_time`, or 0 for graphs with < 2 edges.
    #[inline]
    #[must_use]
    pub fn time_span(&self) -> Timestamp {
        match (self.min_time(), self.max_time()) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes as NodeId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TemporalGraph {
        // Fig. 1 of the paper: a=0, b=1, c=2, d=3, e=4.
        TemporalGraph::from_edges(vec![
            TemporalEdge::new(4, 3, 1),
            TemporalEdge::new(0, 2, 4),
            TemporalEdge::new(4, 2, 6),
            TemporalEdge::new(0, 2, 8),
            TemporalEdge::new(3, 0, 9),
            TemporalEdge::new(3, 2, 10),
            TemporalEdge::new(0, 1, 11),
            TemporalEdge::new(3, 4, 14),
            TemporalEdge::new(0, 2, 15),
            TemporalEdge::new(2, 3, 17),
            TemporalEdge::new(4, 3, 18),
            TemporalEdge::new(3, 4, 21),
        ])
    }

    #[test]
    fn toy_graph_shape() {
        let g = toy();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.min_time(), Some(1));
        assert_eq!(g.max_time(), Some(21));
        assert_eq!(g.time_span(), 20);
    }

    #[test]
    fn node_sequence_matches_paper_example() {
        // §IV.A.3: S_a = <(4s,c,o),(8s,c,o),(9s,d,in),(11s,b,o),(15s,c,o)>
        let g = toy();
        let sa: Vec<_> = g
            .node_events(0)
            .iter()
            .map(|e| (e.t, e.other, e.dir))
            .collect();
        assert_eq!(
            sa,
            vec![
                (4, 2, Dir::Out),
                (8, 2, Dir::Out),
                (9, 3, Dir::In),
                (11, 1, Dir::Out),
                (15, 2, Dir::Out),
            ]
        );
        // §IV.B.2: S_e = <(1s,d,o),(6s,c,o),(14s,d,in),(18s,d,o),(21s,d,in)>
        let se: Vec<_> = g
            .node_events(4)
            .iter()
            .map(|e| (e.t, e.other, e.dir))
            .collect();
        assert_eq!(
            se,
            vec![
                (1, 3, Dir::Out),
                (6, 2, Dir::Out),
                (14, 3, Dir::In),
                (18, 3, Dir::Out),
                (21, 3, Dir::In),
            ]
        );
    }

    #[test]
    fn sequences_are_time_ordered() {
        let g = toy();
        for u in g.node_ids() {
            let s = g.node_events(u);
            assert!(s.windows(2).all(|w| w[0].t <= w[1].t), "S_{u} unsorted");
            assert!(s.windows(2).all(|w| w[0].edge < w[1].edge));
        }
    }

    #[test]
    fn degrees_sum_to_twice_edges() {
        let g = toy();
        let total: usize = g.node_ids().map(|u| g.degree(u)).sum();
        assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn pair_index_matches_paper_example() {
        // §IV.B.2: E(v_c, v_d) = {(v_d, v_c, 10s), (v_c, v_d, 17s)}
        let g = toy();
        let evs = g.pair_events(2, 3);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].t, 10);
        assert_eq!(evs[0].dir_from_lo, Dir::In); // d -> c means hi -> lo
        assert_eq!(evs[1].t, 17);
        assert_eq!(evs[1].dir_from_lo, Dir::Out); // c -> d means lo -> hi

        // Symmetric query.
        assert_eq!(g.pair_events(3, 2), evs);
        // Direction relative to each endpoint.
        assert_eq!(evs[0].dir_from(true), Dir::In); // from c's view: inward
        assert_eq!(evs[0].dir_from(false), Dir::Out); // from d's view: outward
    }

    #[test]
    fn pair_index_empty_for_unconnected_pair() {
        let g = toy();
        assert!(g.pair_events(1, 4).is_empty());
    }

    #[test]
    fn pair_events_time_ordered() {
        let g = toy();
        let p = g.pairs();
        let mut seen = 0;
        for slot in 0..p.num_pairs() {
            let evs = p.events_of_slot(slot);
            assert!(!evs.is_empty());
            assert!(evs.windows(2).all(|w| w[0].edge < w[1].edge));
            assert!(evs.windows(2).all(|w| w[0].t <= w[1].t));
            seen += evs.len();
        }
        assert_eq!(seen, g.num_edges());
    }

    #[test]
    fn edge_ids_are_chronological_ranks() {
        let g = toy();
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(g.edge(i as EdgeId), *e);
        }
        assert!(g.edges().windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::from_edges(vec![]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.min_time(), None);
        assert_eq!(g.time_span(), 0);
        assert_eq!(g.pairs().num_pairs(), 0);
    }

    #[test]
    fn timestamp_ties_keep_input_order() {
        let g = TemporalGraph::from_edges(vec![
            TemporalEdge::new(0, 1, 5),
            TemporalEdge::new(1, 2, 5),
            TemporalEdge::new(2, 0, 5),
        ]);
        assert_eq!(g.edge(0), TemporalEdge::new(0, 1, 5));
        assert_eq!(g.edge(1), TemporalEdge::new(1, 2, 5));
        assert_eq!(g.edge(2), TemporalEdge::new(2, 0, 5));
    }
}
