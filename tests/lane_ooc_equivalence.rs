//! Property battery for the execution-strategy invariants behind the
//! lane-compression and out-of-core work: however the timestamps are
//! stored (raw vs delta-packed lanes) and however the graph is fed to
//! the kernels (one in-RAM arena vs delta-haloed chunks under a byte
//! budget), the `MotifMatrix`, the per-node `NodeProfiles`, and the
//! graph fingerprint must be bit-identical. The `arb::graph` streams
//! include self-loops (dropped by the builder) and heavy timestamp
//! ties, the cases where chunk cuts and packed decoding are most likely
//! to drift.

use proptest::prelude::*;

use hare::{InMemorySource, OocConfig};
use temporal_graph::gen::arb;
use temporal_graph::LaneLayout;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compressed lanes are a storage change only: counts, per-node
    /// profiles and the content fingerprint all survive a round trip
    /// through the packed representation bit-for-bit.
    #[test]
    fn compressed_lanes_preserve_counts_profiles_and_fingerprint(
        g in arb::graph(10, 60, 90),
        delta in 0i64..120,
    ) {
        let packed = g.clone().into_lane_layout(LaneLayout::Compressed);
        prop_assert_eq!(packed.fingerprint(), g.fingerprint());
        prop_assert_eq!(
            hare::count_motifs(&packed, delta).matrix,
            hare::count_motifs(&g, delta).matrix
        );
        prop_assert_eq!(
            hare::NodeProfiles::compute(&packed, delta, 1),
            hare::NodeProfiles::compute(&g, delta, 1)
        );
        // And back: unpacking restores the raw path exactly.
        let raw_again = packed.into_lane_layout(LaneLayout::Raw);
        prop_assert_eq!(raw_again.fingerprint(), g.fingerprint());
        prop_assert_eq!(
            hare::count_motifs(&raw_again, delta).matrix,
            hare::count_motifs(&g, delta).matrix
        );
    }

    /// Chunk-loaded counting equals the in-RAM kernel for every budget,
    /// from "everything in one chunk" down to budgets so small every cut
    /// is forced — exactness is never traded for the budget.
    #[test]
    fn chunked_counts_match_in_ram_at_any_budget(
        g in arb::graph(10, 60, 90),
        delta in 0i64..120,
        budget_divisor in 1usize..12,
        compressed in 0usize..2,
    ) {
        let reference = hare::count_motifs(&g, delta);
        let src = InMemorySource::from_graph(&g);
        let full = (g.num_edges() as usize) * hare::ooc::LANE_BYTES_PER_EDGE;
        let layout = if compressed == 1 { LaneLayout::Compressed } else { LaneLayout::Raw };
        let cfg = OocConfig {
            delta,
            budget_bytes: full / budget_divisor + 1,
            lane_layout: layout,
        };
        let (counts, stats) = hare::count_motifs_ooc(&src, cfg).unwrap();
        prop_assert_eq!(counts.matrix, reference.matrix);
        if layout == LaneLayout::Raw && stats.forced_cuts == 0 {
            prop_assert!(stats.peak_resident_lane_bytes <= cfg.budget_bytes);
        }
    }

    /// Chunk-loaded per-node profiles equal the in-RAM driver, node for
    /// node and counter for counter.
    #[test]
    fn chunked_profiles_match_in_ram(
        g in arb::graph(10, 50, 80),
        delta in 0i64..100,
        budget_divisor in 1usize..8,
    ) {
        let reference = hare::NodeProfiles::compute(&g, delta, 1);
        let src = InMemorySource::from_graph(&g);
        let full = (g.num_edges() as usize) * hare::ooc::LANE_BYTES_PER_EDGE;
        let cfg = OocConfig::new(delta, full / budget_divisor + 1);
        let (profiles, _) = hare::node_profiles_ooc(&src, cfg).unwrap();
        prop_assert_eq!(profiles, reference);
    }
}
