//! End-to-end verification against every concrete number the paper
//! derives from its Fig. 1 toy graph (5 nodes, 12 temporal edges,
//! δ = 10s).

use hare::motif::m;
use hare::{NeighborScratch, PairCounter, StarCounter, StarType, TriCounter, TriType};
use temporal_graph::gen::paper_fig1_toy;
use temporal_graph::Dir::{In, Out};

#[test]
fn section3_names_three_instances() {
    // §III: "S = <(va,vc,4s),(va,vc,8s),(vd,va,9s)> is a motif instance
    // of temporal motif M63", "<(ve,vc,6s),(vd,vc,10s),(vd,ve,14s)> ...
    // M46", "<(vd,ve,14s),(ve,vd,18s),(vd,ve,21s)> ... M65".
    use temporal_graph::TemporalEdge as E;
    assert_eq!(
        hare_baselines::classify(E::new(0, 2, 4), E::new(0, 2, 8), E::new(3, 0, 9)),
        Some(m(6, 3))
    );
    assert_eq!(
        hare_baselines::classify(E::new(4, 2, 6), E::new(3, 2, 10), E::new(3, 4, 14)),
        Some(m(4, 6))
    );
    assert_eq!(
        hare_baselines::classify(E::new(3, 4, 14), E::new(4, 3, 18), E::new(3, 4, 21)),
        Some(m(6, 5))
    );
}

#[test]
fn section4a_walkthrough_of_center_va() {
    // §IV.A.3 processes center v_a and derives exactly:
    //   Star[III,o,o,in] += 1   (e1=(4s,c,o), e3=(9s,d,in), e2=(8s,c,o))
    //   Star[III,o,o,o]  += 1   (e1=(4s,c,o), e3=(11s,b,o), e2=(8s,c,o))
    //   Star[II,o,in,o]  += 1   (e1=(8s,c,o), e3=(15s,c,o), e2=(9s,d,in))
    //   Star[II,o,o,o]   += 1   (e1=(8s,c,o), e3=(15s,c,o), e2=(11s,b,o))
    let g = paper_fig1_toy();
    let mut scratch = NeighborScratch::new(g.num_nodes());
    let mut star = StarCounter::default();
    let mut pair = PairCounter::default();
    hare::fast_star::count_node_star_pair(&g, 0, 10, &mut scratch, &mut star, &mut pair);
    assert_eq!(star.get(StarType::III, Out, Out, In), 1);
    assert_eq!(star.get(StarType::III, Out, Out, Out), 1);
    assert_eq!(star.get(StarType::II, Out, In, Out), 1);
    assert_eq!(star.get(StarType::II, Out, Out, Out), 1);
    assert_eq!(star.total(), 4, "no other star counts at v_a");
    assert_eq!(pair.total(), 0, "no pair motifs at v_a");
}

#[test]
fn section4b_walkthrough_of_center_ve() {
    // §IV.B.2 processes center v_e and derives exactly two triangles:
    // Tri[III,o,o,o] and (typo-corrected per Fig. 8 + §III's M46 claim)
    // Tri[II,o,in,in].
    let g = paper_fig1_toy();
    let mut tri = TriCounter::default();
    hare::fast_tri::count_node_tri(&g, 4, 10, &mut tri);
    assert_eq!(tri.get(TriType::III, Out, Out, Out), 1);
    assert_eq!(tri.get(TriType::II, Out, In, In), 1);
    assert_eq!(tri.total(), 2);
}

#[test]
fn full_toy_matrix_from_all_engines() {
    let g = paper_fig1_toy();
    let fast = hare::count_motifs(&g, 10);
    // The three named instances are present in the final grid.
    assert!(fast.get(m(6, 3)) >= 1);
    assert!(fast.get(m(4, 6)) >= 1);
    assert_eq!(fast.get(m(6, 5)), 1);
    // All engines agree on all 36 cells.
    assert_eq!(fast.matrix, hare_baselines::enumerate_all(&g, 10));
    assert_eq!(fast.matrix, hare_baselines::ex::count_all(&g, 10));
    assert_eq!(fast.matrix, hare_baselines::bt_count_all(&g, 10));
    assert_eq!(
        fast.matrix,
        hare::Hare::with_threads(3).count_all(&g, 10).matrix
    );
}

#[test]
fn toy_delta_sensitivity() {
    // With a huge δ every 3-edge combination on <=3 nodes counts; with
    // δ=0 nothing does (no three simultaneous edges in Fig. 1).
    let g = paper_fig1_toy();
    assert_eq!(hare::count_motifs(&g, 0).total(), 0);
    let big = hare::count_motifs(&g, 1_000).total();
    let small = hare::count_motifs(&g, 10).total();
    assert!(big > small && small > 0);
    // Spot value: δ=20 admits the M65 pair plus everything at δ=10.
    assert!(hare::count_motifs(&g, 20).total() >= small);
}

#[test]
fn toy_tri_counter_class_balance() {
    let g = paper_fig1_toy();
    let tri = hare::fast_tri::fast_tri(&g, 10);
    assert!(tri.class_cells_balanced());
    assert_eq!(tri.total() % 3, 0);
}
