//! Integration tests for the extension layers built on top of the
//! paper's core: streaming, multi-δ sweep, sliding windows, per-node
//! profiles and generic higher-order patterns — all cross-checked
//! against the batch FAST pipeline.

use hare::streaming::StreamingCounter;
use hare::{Hare, Motif};
use hare_baselines::MotifPattern;
use temporal_graph::gen::GenConfig;

fn workload(seed: u64) -> temporal_graph::TemporalGraph {
    GenConfig {
        nodes: 50,
        edges: 1_500,
        time_span: 30_000,
        seed,
        ..GenConfig::default()
    }
    .generate()
}

#[test]
fn streaming_sweep_and_batch_agree() {
    let g = workload(1);
    for delta in [100, 1_000, 8_000] {
        let batch = hare::count_motifs(&g, delta);

        let mut sc = StreamingCounter::new(delta);
        for e in g.edges() {
            sc.push(e.src, e.dst, e.t).unwrap();
        }
        assert_eq!(sc.counts(), batch.matrix, "streaming, delta={delta}");
    }
    let sweep = hare::sweep::count_motifs_sweep(&g, &[100, 1_000, 8_000]);
    for (delta, counts) in sweep {
        assert_eq!(
            counts.matrix,
            hare::count_motifs(&g, delta).matrix,
            "sweep, delta={delta}"
        );
    }
}

#[test]
fn streaming_matches_oracle_not_just_fast() {
    // Independent check against the enumeration oracle, so a shared bug
    // in FAST and streaming (which reuse counting identities) would
    // still be caught.
    let g = workload(2);
    let delta = 2_000;
    let mut sc = StreamingCounter::new(delta);
    for e in g.edges() {
        sc.push(e.src, e.dst, e.t).unwrap();
    }
    assert_eq!(sc.counts(), hare_baselines::enumerate_all(&g, delta));
}

#[test]
fn window_rows_match_per_window_batch_counts() {
    let g = workload(3);
    let delta = 500;
    let engine = Hare::with_threads(2);
    let rows = hare::windows::sliding_counts(&g, delta, 10_000, 10_000, &engine);
    assert!(!rows.is_empty());
    // Rebuild each window by hand and compare.
    let edges = g.edges();
    for row in &rows {
        let mut b = temporal_graph::GraphBuilder::new().compact_ids(true);
        b.extend(
            edges
                .iter()
                .filter(|e| e.t >= row.start && e.t < row.end)
                .copied(),
        );
        let sub = b.build();
        let expect = if sub.num_edges() >= 3 {
            hare::count_motifs(&sub, delta).matrix
        } else {
            hare::MotifMatrix::default()
        };
        assert_eq!(row.counts.matrix, expect, "window at {}", row.start);
    }
}

#[test]
fn profiles_sum_matches_grid_with_multiplicities() {
    let g = workload(4);
    let delta = 1_500;
    let profiles = hare::fingerprint::node_profiles(&g, delta, 2);
    let total = hare::fingerprint::profile_sum(&profiles);
    let grid = hare::count_motifs(&g, delta);
    for m in Motif::all() {
        assert_eq!(
            total.get(m),
            grid.get(m) * hare::fingerprint::attribution_multiplicity(m),
            "{m}"
        );
    }
}

#[test]
fn higher_order_patterns_on_known_structures() {
    // The paper's future-work direction (k-node, l-edge motifs) via the
    // generic BT matcher: a 4-edge temporal cycle a->b->c->d->a.
    let g = temporal_graph::TemporalGraph::from_edges(vec![
        temporal_graph::TemporalEdge::new(0, 1, 10),
        temporal_graph::TemporalEdge::new(1, 2, 20),
        temporal_graph::TemporalEdge::new(2, 3, 30),
        temporal_graph::TemporalEdge::new(3, 0, 40),
        // decoy chord
        temporal_graph::TemporalEdge::new(0, 2, 25),
    ]);
    let cycle4 = MotifPattern::new(vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    assert_eq!(cycle4.count(&g, 100), 1);
    assert_eq!(cycle4.count(&g, 20), 0, "span 30 exceeds delta 20");

    // 4-edge out-star: one center firing at four distinct targets.
    let star4 = MotifPattern::new(vec![(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
    let burst = temporal_graph::TemporalGraph::from_edges(
        (0..5)
            .map(|i| temporal_graph::TemporalEdge::new(9, 10 + i, i as i64))
            .collect(),
    );
    // C(5,4) ordered selections respecting time order = 5.
    assert_eq!(star4.count(&burst, 100), 5);

    // Cross-check the 4-cycle count against the cycle census.
    assert_eq!(hare_baselines::two_scent_census(&g, 100, 5).by_len[4], 1);
}

#[test]
fn streaming_ingest_is_usable_for_online_alerts() {
    // Mimic the anomaly example in streaming form: counts visible after
    // every arrival without recounting history.
    let g = workload(5);
    let delta = 1_000;
    let mut sc = StreamingCounter::new(delta);
    let mut checkpoints = 0;
    for (i, e) in g.edges().iter().enumerate() {
        sc.push(e.src, e.dst, e.t).unwrap();
        if i % 500 == 499 {
            // Prefix equality against batch on the prefix graph.
            let prefix = temporal_graph::TemporalGraph::from_edges(g.edges()[..=i].to_vec());
            assert_eq!(sc.counts(), hare::count_motifs(&prefix, delta).matrix);
            checkpoints += 1;
        }
    }
    assert!(checkpoints >= 2);
}
