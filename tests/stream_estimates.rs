//! Statistical differential battery for the bounded-memory streaming
//! estimator (`hare::stream_sample::StreamingEstimator`):
//!
//! 1. **Degeneracy** — with a budget large enough to retain everything,
//!    every per-push tick is bit-identical (after integer round-trip) to
//!    the exact sliding-window engine, on arbitrary streams with
//!    duplicate timestamps, self-loops, and slack-jittered arrivals.
//! 2. **Unbiasedness + coverage** — under a budget that forces sampling,
//!    the mean estimate over ≥ 50 seeds converges on the exact count and
//!    the 95% confidence intervals cover it for ≥ 90% of seed × motif
//!    pairs in aggregate.
//! 3. **Baseline agreement** — on batch prefixes of a stream, the
//!    estimator agrees with the EWS edge-sampling baseline (Wang et al.,
//!    CIKM 2020): exactly in the degenerate configurations, statistically
//!    when both sample.
//! 4. **Determinism** — fixed seed + fixed stream is bit-identical across
//!    replays and thread counts.
//! 5. **Budget compliance** — accounted retained bytes never exceed the
//!    budget at any tick, for any stream.

use hare::sample::MotifEstimate;
use hare::stream_sample::{StreamSampleConfig, StreamingEstimator, EDGE_BYTES};
use hare::streaming::StreamError;
use hare::windowed::WindowedCounter;
use hare_baselines::ews::EwsConfig;
use proptest::prelude::*;
use temporal_graph::gen::{arb, GenConfig};
use temporal_graph::{GraphBuilder, NodeId, Timestamp};

/// The coverage workload from `tests/sampling_accuracy.rs`: moderately
/// dense and mildly clustered, so per-window motif mass spreads across
/// many windows and the normal-approximation intervals are honest.
fn smooth_workload(seed: u64) -> temporal_graph::TemporalGraph {
    GenConfig {
        nodes: 60,
        edges: 4_000,
        time_span: 80_000,
        mean_burst_len: 2.5,
        seed,
        ..GenConfig::default()
    }
    .generate()
}

/// Chronological arrival list of a generated graph.
fn arrivals_of(g: &temporal_graph::TemporalGraph) -> Vec<(NodeId, NodeId, Timestamp)> {
    let mut edges: Vec<(NodeId, NodeId, Timestamp)> =
        g.edges().iter().map(|e| (e.src, e.dst, e.t)).collect();
    edges.sort_by_key(|&(_, _, t)| t);
    edges
}

/// Assert that a (supposedly exact) estimate cell round-trips to `n`.
fn assert_exact_cell(m: hare::Motif, e: MotifEstimate, n: u64) {
    assert_eq!(e.estimate, n as f64, "{m}: exact-path estimate");
    assert_eq!(e.stderr, 0.0, "{m}: exact-path stderr");
    assert_eq!(e.ci_lo, n as f64, "{m}");
    assert_eq!(e.ci_hi, n as f64, "{m}");
}

// ---- 1. degeneracy: big budget == WindowedCounter, tick for tick ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Feed the same arrival sequence (duplicate timestamps, self-loops,
    /// slack-jittered ordering) to the exact windowed engine and to the
    /// estimator with a budget that retains everything. Acceptance
    /// decisions and every per-push tick must agree bit for bit.
    #[test]
    fn big_budget_ticks_are_bit_identical_to_windowed(
        triples in arb::raw_triples(8, 50, 60),
        (delta, window) in arb::delta_window(40, 50),
        slack in 0i64..12,
    ) {
        let mut wc = WindowedCounter::with_slack(delta, window, slack);
        let mut est = StreamingEstimator::new(StreamSampleConfig {
            slack,
            ..StreamSampleConfig::new(delta, window, 1 << 30)
        });
        for &(s, d, t) in &triples {
            let a = wc.push(s, d, t);
            let b = est.push(s, d, t);
            prop_assert_eq!(&a, &b);
            if matches!(a, Err(StreamError::SelfLoop)) {
                prop_assert_eq!(s, d);
            }
            let tick = est.estimates();
            prop_assert_eq!(tick.prob, 1.0);
            prop_assert_eq!(tick.as_exact(), Some(wc.counts()));
            for (m, n) in wc.counts().iter() {
                let cell = tick.get(m);
                prop_assert_eq!(cell.estimate, n as f64);
                prop_assert_eq!(cell.stderr, 0.0);
            }
        }
        wc.flush();
        est.flush();
        prop_assert_eq!(est.estimates().as_exact(), Some(wc.counts()));
    }
}

// ---- 2. unbiasedness and CI coverage under a forcing budget ----

#[test]
fn estimates_are_unbiased_over_seeds_under_budget() {
    let g = smooth_workload(7);
    let delta = 300;
    let window = 80_000;
    let exact = {
        let mut wc = WindowedCounter::new(delta, window);
        for (s, d, t) in arrivals_of(&g) {
            wc.push(s, d, t).unwrap();
        }
        wc.flush();
        wc.counts().total() as f64
    };
    assert!(exact > 1_000.0, "workload too sparse ({exact})");

    let runs = 50u64;
    let mut genuine = 0u32;
    let mean: f64 = (0..runs)
        .map(|seed| {
            let mut est = StreamingEstimator::new(StreamSampleConfig {
                window_factor: 4,
                seed,
                ..StreamSampleConfig::new(delta, window, 600 * EDGE_BYTES)
            });
            for (s, d, t) in arrivals_of(&g) {
                est.push(s, d, t).unwrap();
            }
            est.flush();
            let tick = est.estimates();
            // Sampling now happens in three tiers: a halved coin-tier
            // `p`, a raised summary threshold `τ`, or epoch folding of
            // summary mass — any of them means the estimate is no
            // longer trivially exact.
            genuine += u32::from(
                tick.prob < 1.0 || est.summary_threshold() > 1.0 || est.folded_epochs() > 0,
            );
            assert_eq!(tick.as_exact(), None, "budget must bind for this test");
            tick.total_estimate()
        })
        .sum::<f64>()
        / runs as f64;
    assert_eq!(
        genuine, runs as u32,
        "budget never forced sampling; the test is vacuous"
    );
    let rel = (mean - exact).abs() / exact;
    assert!(
        rel < 0.1,
        "mean estimate {mean:.1} drifts from exact {exact:.1} (rel {rel:.3})"
    );
}

#[test]
fn ci_coverage_is_at_least_90_percent_in_aggregate() {
    let g = smooth_workload(11);
    let delta = 300;
    let window = 80_000;
    let exact = {
        let mut wc = WindowedCounter::new(delta, window);
        for (s, d, t) in arrivals_of(&g) {
            wc.push(s, d, t).unwrap();
        }
        wc.flush();
        wc.counts()
    };
    let nonzero = exact.iter().filter(|&(_, n)| n > 0).count();
    assert!(nonzero >= 25, "workload too sparse ({nonzero} motifs)");

    let seeds = 50u64;
    let (mut covered, mut cells) = (0usize, 0usize);
    let mut sampled_runs = 0u32;
    for seed in 0..seeds {
        let mut est = StreamingEstimator::new(StreamSampleConfig {
            window_factor: 4,
            seed,
            ..StreamSampleConfig::new(delta, window, 600 * EDGE_BYTES)
        });
        for (s, d, t) in arrivals_of(&g) {
            est.push(s, d, t).unwrap();
        }
        est.flush();
        let tick = est.estimates();
        sampled_runs +=
            u32::from(tick.prob < 1.0 || est.summary_threshold() > 1.0 || est.folded_epochs() > 0);
        for (m, n) in exact.iter() {
            if n > 0 {
                cells += 1;
                covered += usize::from(tick.get(m).covers(n));
            }
        }
    }
    assert_eq!(sampled_runs, seeds as u32, "every run must actually sample");
    let rate = covered as f64 / cells as f64;
    assert!(
        rate >= 0.90,
        "95% CIs covered the exact count for only {:.1}% of {} seed x motif pairs",
        rate * 100.0,
        cells
    );
}

// ---- 3. agreement with the revived EWS baseline on batch prefixes ----

/// Exact regime: for growing prefixes of a stream, the estimator with a
/// roomy budget and EWS with `p = 1` are both exact — so they must agree
/// cell for cell (the estimator after integer round-trip).
#[test]
fn degenerate_estimator_matches_degenerate_ews_on_prefixes() {
    let g = smooth_workload(13);
    let delta = 500;
    let arrivals = arrivals_of(&g);
    let window: Timestamp = 1 << 40; // never expire: prefix == batch
    for frac in [4, 2, 1] {
        let prefix = &arrivals[..arrivals.len() / frac];
        let mut est = StreamingEstimator::new(StreamSampleConfig::new(delta, window, 1 << 30));
        let mut b = GraphBuilder::new();
        for &(s, d, t) in prefix {
            est.push(s, d, t).unwrap();
            b.add_edge(s, d, t);
        }
        est.flush();
        let tick = est.estimates();
        let batch = b.build();
        let ews = hare_baselines::ews_estimate(
            &batch,
            delta,
            &EwsConfig {
                edge_prob: 1.0,
                seed: 5,
            },
        );
        let exact = hare::count_motifs(&batch, delta);
        assert_eq!(
            ews.mean_relative_error(&exact.matrix),
            0.0,
            "EWS p=1 must be exact"
        );
        for (m, n) in exact.matrix.iter() {
            assert_exact_cell(m, tick.get(m), n);
        }
    }
}

/// Sampling regime: both estimators are unbiased, so their seed-means on
/// the same batch must land near the same exact total — tying the new
/// streaming estimator to the established baseline statistically, not
/// just through the shared exact kernel.
#[test]
fn sampling_estimator_and_ews_agree_statistically() {
    let g = smooth_workload(17);
    let delta = 300;
    let window: Timestamp = 1 << 40;
    let exact = hare::count_motifs(&g, delta).total() as f64;
    let runs = 40u64;

    let stream_mean: f64 = (0..runs)
        .map(|seed| {
            // 2 400 retained edges of the 4 000-edge stream: the adaptive
            // probability settles at 0.5, matching the EWS run below so
            // the two means carry comparable variance.
            let mut est = StreamingEstimator::new(StreamSampleConfig {
                window_factor: 4,
                seed,
                ..StreamSampleConfig::new(delta, window, 2_400 * EDGE_BYTES)
            });
            for (s, d, t) in arrivals_of(&g) {
                est.push(s, d, t).unwrap();
            }
            est.flush();
            est.estimates().total_estimate()
        })
        .sum::<f64>()
        / runs as f64;
    let ews_mean: f64 = (0..runs)
        .map(|seed| {
            hare_baselines::ews_estimate(
                &g,
                delta,
                &EwsConfig {
                    edge_prob: 0.5,
                    seed,
                },
            )
            .total()
        })
        .sum::<f64>()
        / runs as f64;

    for (name, mean) in [("stream", stream_mean), ("ews", ews_mean)] {
        let rel = (mean - exact).abs() / exact;
        assert!(
            rel < 0.1,
            "{name} mean {mean:.1} drifts from exact {exact:.1} (rel {rel:.3})"
        );
    }
    let gap = (stream_mean - ews_mean).abs() / exact;
    assert!(
        gap < 0.15,
        "estimators disagree: stream {stream_mean:.1} vs ews {ews_mean:.1} (gap {gap:.3})"
    );
}

// ---- 4. determinism across replays and thread counts ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed + same stream → bit-identical ticks, regardless of the
    /// kernel thread count and across independent replays.
    #[test]
    fn same_seed_and_stream_is_bit_identical_across_threads(
        triples in arb::raw_triples(10, 60, 40),
        (delta, window) in arb::delta_window(20, 30),
        seed in 0u64..u64::MAX,
    ) {
        let run = |threads: usize| {
            let mut est = StreamingEstimator::new(StreamSampleConfig {
                seed,
                threads,
                // A tight budget so the sampled (p < 1) path is exercised
                // whenever the stream is dense enough.
                ..StreamSampleConfig::new(delta, window, 8 * EDGE_BYTES)
            });
            let mut ticks = Vec::new();
            for &(s, d, t) in &triples {
                let _ = est.push(s, d, t);
                ticks.push(est.estimates());
            }
            est.flush();
            ticks.push(est.estimates());
            ticks
        };
        let base = run(1);
        prop_assert_eq!(&base, &run(1));
        prop_assert_eq!(&base, &run(3));
    }
}

// ---- 5. the budget is a hard ceiling at every tick ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Accounted retained bytes never exceed the budget after any push,
    /// advance, or flush — the RSS proxy the CLI/daemon budget promises.
    #[test]
    fn retained_bytes_never_exceed_budget(
        triples in arb::raw_triples(10, 80, 60),
        (delta, window) in arb::delta_window(30, 40),
        budget_edges in 1u64..24,
    ) {
        let budget = budget_edges * EDGE_BYTES;
        let mut est = StreamingEstimator::new(
            StreamSampleConfig::new(delta, window, budget),
        );
        for &(s, d, t) in &triples {
            let _ = est.push(s, d, t);
            prop_assert!(
                est.retained_bytes() <= budget,
                "after push: {} > {}", est.retained_bytes(), budget
            );
            prop_assert_eq!(
                est.retained_bytes(),
                est.retained_edges() as u64 * EDGE_BYTES
            );
        }
        est.flush();
        prop_assert!(est.retained_bytes() <= budget);
    }
}
