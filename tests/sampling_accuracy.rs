//! Accuracy validation of the sampling estimators: the interval-sampling
//! engine (`hare::sample`) and the baselines (BTS, EWS). Covers
//! exactness in the degenerate configurations, approximate unbiasedness
//! over seeds, error decreasing with the sampling budget, and the
//! statistical coverage of the confidence intervals.

use hare::sample::{SampleConfig, SampledCounter};
use hare_baselines::{bts::BtsConfig, ews::EwsConfig, EstimateMatrix};
use proptest::prelude::*;
use temporal_graph::gen::{arb, GenConfig};

fn workload(seed: u64) -> temporal_graph::TemporalGraph {
    GenConfig {
        nodes: 60,
        edges: 4_000,
        time_span: 80_000,
        mean_burst_len: 2.5,
        seed,
        ..GenConfig::default()
    }
    .generate()
}

#[test]
fn ews_with_p_one_is_exact_on_all_36_cells() {
    let g = workload(1);
    let delta = 800;
    let exact = hare::count_motifs(&g, delta);
    let est = hare_baselines::ews_estimate(
        &g,
        delta,
        &EwsConfig {
            edge_prob: 1.0,
            seed: 3,
        },
    );
    assert_eq!(est.mean_relative_error(&exact.matrix), 0.0);
}

#[test]
fn ews_error_decreases_with_sampling_probability() {
    let g = workload(2);
    let delta = 800;
    let exact = hare::count_motifs(&g, delta);
    let mean_err = |p: f64| -> f64 {
        let runs = 12;
        (0..runs)
            .map(|seed| {
                hare_baselines::ews_estimate(&g, delta, &EwsConfig { edge_prob: p, seed })
                    .mean_relative_error(&exact.matrix)
            })
            .sum::<f64>()
            / runs as f64
    };
    let coarse = mean_err(0.05);
    let fine = mean_err(0.5);
    assert!(
        fine < coarse,
        "error should shrink with p: p=0.05 -> {coarse:.3}, p=0.5 -> {fine:.3}"
    );
}

#[test]
fn bts_total_estimate_is_unbiased_over_seeds() {
    let g = workload(3);
    let delta = 500;
    let exact = hare::count_pair_motifs(&g, delta).total() as f64;
    assert!(exact > 50.0, "workload too sparse ({exact})");
    let runs = 40;
    let mean: f64 = (0..runs)
        .map(|seed| {
            hare_baselines::bts_pair_estimate(
                &g,
                delta,
                &BtsConfig {
                    window_factor: 8,
                    sample_prob: 0.6,
                    seed,
                },
            )
            .total()
        })
        .sum::<f64>()
        / runs as f64;
    let rel = (mean - exact).abs() / exact;
    assert!(
        rel < 0.25,
        "mean {mean:.1} vs exact {exact:.1} (rel {rel:.3})"
    );
}

#[test]
fn estimate_matrix_error_metric_behaves() {
    let g = workload(4);
    let delta = 500;
    let exact = hare::count_motifs(&g, delta);
    // A perfect estimate has zero error; a halved estimate has error 0.5
    // on every populated cell.
    let perfect = EstimateMatrix::from_exact(&exact.matrix);
    assert_eq!(perfect.mean_relative_error(&exact.matrix), 0.0);
    let mut halved = EstimateMatrix::default();
    for (m, n) in exact.matrix.iter() {
        halved.add(m, n as f64 / 2.0);
    }
    let err = halved.mean_relative_error(&exact.matrix);
    assert!((err - 0.5).abs() < 1e-9, "{err}");
}

#[test]
fn samplers_only_estimate_do_not_mutate_exact_path() {
    // Running samplers and exact counters interleaved gives stable exact
    // results (no hidden global state).
    let g = workload(5);
    let delta = 500;
    let before = hare::count_motifs(&g, delta);
    let _ = hare_baselines::ews_estimate(&g, delta, &EwsConfig::default());
    let _ = hare_baselines::bts_pair_estimate(&g, delta, &BtsConfig::default());
    let after = hare::count_motifs(&g, delta);
    assert_eq!(before.matrix, after.matrix);
}

// ---- interval-sampling estimator (hare::sample) ----

/// A moderately dense, mildly clustered workload where per-window motif
/// mass is spread across many windows — the regime where the estimator's
/// normal-approximation intervals are tight (docs/ESTIMATORS.md §4).
fn smooth_workload() -> temporal_graph::TemporalGraph {
    GenConfig {
        nodes: 60,
        edges: 4_000,
        time_span: 80_000,
        seed: 2,
        ..GenConfig::default()
    }
    .generate()
}

/// Statistical coverage: across ≥ 50 sampling seeds, the 95% confidence
/// intervals must cover the exact count for ≥ 90% of the motifs with a
/// non-zero exact count (aggregated over seed × motif pairs; coverage
/// correlates across motifs within one seed, so per-seed fractions swing
/// while the aggregate is stable). Fully deterministic: fixed workload,
/// fixed seed range.
#[test]
fn interval_sampling_ci_covers_exact_across_seeds() {
    let g = smooth_workload();
    let delta = 800;
    let exact = hare::count_motifs(&g, delta);
    let nonzero = exact.matrix.iter().filter(|&(_, n)| n > 0).count();
    assert!(nonzero >= 30, "workload too sparse ({nonzero} motifs)");

    let seeds = 60u64;
    let mut covered = 0usize;
    let mut cells = 0usize;
    for seed in 0..seeds {
        let est = SampledCounter::new(SampleConfig {
            prob: 0.5,
            window_factor: 4,
            confidence: 0.95,
            seed,
            threads: 1,
        })
        .count(&g, delta);
        for (m, n) in exact.matrix.iter() {
            if n > 0 {
                cells += 1;
                covered += usize::from(est.get(m).covers(n));
            }
        }
    }
    let rate = covered as f64 / cells as f64;
    assert!(
        rate >= 0.90,
        "95% CIs covered the exact count for only {:.1}% of {} seed x motif pairs",
        rate * 100.0,
        cells
    );
}

/// Point estimates must be unbiased: the mean estimate over many seeds
/// converges on the exact count, per motif category totals.
#[test]
fn interval_sampling_mean_estimate_converges_to_exact() {
    let g = smooth_workload();
    let delta = 800;
    let exact = hare::count_motifs(&g, delta).total() as f64;
    let runs = 50u64;
    let mean: f64 = (0..runs)
        .map(|seed| {
            SampledCounter::new(SampleConfig {
                prob: 0.3,
                window_factor: 4,
                seed,
                ..SampleConfig::default()
            })
            .count(&g, delta)
            .total_estimate()
        })
        .sum::<f64>()
        / runs as f64;
    let rel = (mean - exact).abs() / exact;
    assert!(
        rel < 0.1,
        "mean estimate {mean:.1} drifts from exact {exact:.1} (rel {rel:.3})"
    );
}

proptest! {
    /// `p = 1.0` keeps every window, so the estimator must degenerate to
    /// the exact counts **bit for bit** on arbitrary graphs (timestamp
    /// ties, self-loop stripping, empty graphs, any δ and window factor).
    #[test]
    fn interval_sampling_p_one_is_exact_on_arbitrary_graphs(
        g in arb::graph(10, 60, 80),
        delta in 0i64..40,
        window_factor in 1i64..6,
        seed in 0u64..u64::MAX,
    ) {
        let exact = hare::count_motifs(&g, delta);
        let est = SampledCounter::new(SampleConfig {
            prob: 1.0,
            window_factor,
            seed,
            ..SampleConfig::default()
        })
        .count(&g, delta);
        prop_assert_eq!(est.as_exact(), Some(exact.matrix));
        for (m, e) in est.iter() {
            prop_assert_eq!(e.estimate, exact.get(m) as f64);
            prop_assert_eq!(e.stderr, 0.0);
        }
    }

    /// The window-parallel driver must be bit-identical to the
    /// sequential one-shot for any probability and thread count.
    #[test]
    fn interval_sampling_parallel_matches_sequential(
        g in arb::graph(12, 80, 100),
        prob_i in 0usize..4,
        threads in 2usize..5,
    ) {
        let prob = [0.2f64, 0.5, 0.9, 1.0][prob_i];
        let delta = 20;
        let base = SampleConfig {
            prob,
            window_factor: 3,
            seed: 11,
            ..SampleConfig::default()
        };
        let seq = SampledCounter::new(SampleConfig { threads: 1, ..base.clone() }).count(&g, delta);
        let par = SampledCounter::new(SampleConfig { threads, ..base }).count(&g, delta);
        prop_assert_eq!(seq, par);
    }
}
