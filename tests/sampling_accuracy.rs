//! Accuracy validation of the sampling baselines (BTS, EWS): exactness
//! in the degenerate configurations, approximate unbiasedness over
//! seeds, and error decreasing with the sampling budget.

use hare_baselines::{bts::BtsConfig, ews::EwsConfig, EstimateMatrix};
use temporal_graph::gen::GenConfig;

fn workload(seed: u64) -> temporal_graph::TemporalGraph {
    GenConfig {
        nodes: 60,
        edges: 4_000,
        time_span: 80_000,
        mean_burst_len: 2.5,
        seed,
        ..GenConfig::default()
    }
    .generate()
}

#[test]
fn ews_with_p_one_is_exact_on_all_36_cells() {
    let g = workload(1);
    let delta = 800;
    let exact = hare::count_motifs(&g, delta);
    let est = hare_baselines::ews_estimate(
        &g,
        delta,
        &EwsConfig {
            edge_prob: 1.0,
            seed: 3,
        },
    );
    assert_eq!(est.mean_relative_error(&exact.matrix), 0.0);
}

#[test]
fn ews_error_decreases_with_sampling_probability() {
    let g = workload(2);
    let delta = 800;
    let exact = hare::count_motifs(&g, delta);
    let mean_err = |p: f64| -> f64 {
        let runs = 12;
        (0..runs)
            .map(|seed| {
                hare_baselines::ews_estimate(&g, delta, &EwsConfig { edge_prob: p, seed })
                    .mean_relative_error(&exact.matrix)
            })
            .sum::<f64>()
            / runs as f64
    };
    let coarse = mean_err(0.05);
    let fine = mean_err(0.5);
    assert!(
        fine < coarse,
        "error should shrink with p: p=0.05 -> {coarse:.3}, p=0.5 -> {fine:.3}"
    );
}

#[test]
fn bts_total_estimate_is_unbiased_over_seeds() {
    let g = workload(3);
    let delta = 500;
    let exact = hare::count_pair_motifs(&g, delta).total() as f64;
    assert!(exact > 50.0, "workload too sparse ({exact})");
    let runs = 40;
    let mean: f64 = (0..runs)
        .map(|seed| {
            hare_baselines::bts_pair_estimate(
                &g,
                delta,
                &BtsConfig {
                    window_factor: 8,
                    sample_prob: 0.6,
                    seed,
                },
            )
            .total()
        })
        .sum::<f64>()
        / runs as f64;
    let rel = (mean - exact).abs() / exact;
    assert!(
        rel < 0.25,
        "mean {mean:.1} vs exact {exact:.1} (rel {rel:.3})"
    );
}

#[test]
fn estimate_matrix_error_metric_behaves() {
    let g = workload(4);
    let delta = 500;
    let exact = hare::count_motifs(&g, delta);
    // A perfect estimate has zero error; a halved estimate has error 0.5
    // on every populated cell.
    let perfect = EstimateMatrix::from_exact(&exact.matrix);
    assert_eq!(perfect.mean_relative_error(&exact.matrix), 0.0);
    let mut halved = EstimateMatrix::default();
    for (m, n) in exact.matrix.iter() {
        halved.add(m, n as f64 / 2.0);
    }
    let err = halved.mean_relative_error(&exact.matrix);
    assert!((err - 0.5).abs() < 1e-9, "{err}");
}

#[test]
fn samplers_only_estimate_do_not_mutate_exact_path() {
    // Running samplers and exact counters interleaved gives stable exact
    // results (no hidden global state).
    let g = workload(5);
    let delta = 500;
    let before = hare::count_motifs(&g, delta);
    let _ = hare_baselines::ews_estimate(&g, delta, &EwsConfig::default());
    let _ = hare_baselines::bts_pair_estimate(&g, delta, &BtsConfig::default());
    let after = hare::count_motifs(&g, delta);
    assert_eq!(before.matrix, after.matrix);
}
