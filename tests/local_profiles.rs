//! Differential + property suite for per-node motif profiles.
//!
//! Pins the fused-attribution path (`hare::fingerprint::profile_of`,
//! one δ-window scan per center via `fused.rs`) bit-identical to
//!
//! 1. the pre-fusion per-kernel path (`profile_of_separate`: separate
//!    FAST-Star and FAST-Tri drives per node),
//! 2. brute-force attribution derived from `baselines/enumerate.rs`
//!    (every instance visited once; stars attribute to their center,
//!    pairs to both endpoints, triangles to all three vertices),
//!
//! on proptest-generated graphs — built from raw `(src, dst, t)`
//! streams that include self-loops and duplicate timestamps — and pins
//! the documented invariants: column sums = 1×/2×/3× the global grid,
//! node-permutation equivariance, and thread-count bit-identity of the
//! parallel drivers (dense and sparse).

use proptest::prelude::*;

use hare::motif::{Motif, MotifCategory};
use hare::NeighborScratch;
use temporal_graph::gen::{arb, paper_fig1_toy};
use temporal_graph::{GraphBuilder, NodeId, TemporalGraph};

/// Brute-force per-node attribution: run the instance enumerator and
/// credit each instance to its participating nodes per the documented
/// semantics (star → unique center, pair → both endpoints, triangle →
/// all three vertices).
fn enumerate_profiles(g: &TemporalGraph, delta: i64) -> Vec<[u64; 36]> {
    let mut profiles = vec![[0u64; 36]; g.num_nodes()];
    hare_baselines::enumerate::enumerate_instances(g, delta, |e1, e2, e3, m| {
        let edges = [g.edge(e1), g.edge(e2), g.edge(e3)];
        let mut nodes: Vec<NodeId> = edges.iter().flat_map(|e| [e.src, e.dst]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let idx = (m.row() as usize - 1) * 6 + (m.col() as usize - 1);
        match m.category() {
            MotifCategory::Star => {
                // The center is the unique node on all three edges.
                let center = nodes
                    .iter()
                    .copied()
                    .find(|&u| edges.iter().all(|e| e.src == u || e.dst == u))
                    .expect("star instance has a center");
                profiles[center as usize][idx] += 1;
            }
            MotifCategory::Pair | MotifCategory::Triangle => {
                // Pairs span exactly 2 nodes, triangles exactly 3; all
                // participants are credited.
                for u in nodes {
                    profiles[u as usize][idx] += 1;
                }
            }
        }
    });
    profiles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole differential #1: the fused single-scan attribution is
    /// bit-identical to the pre-fusion per-kernel path on every node of
    /// every graph (self-loops and duplicate timestamps included in the
    /// raw stream; the builder's ingestion policy is part of the path).
    #[test]
    fn fused_profiles_match_separate_kernels(g in arb::graph(8, 40, 60), delta in 0i64..80) {
        let mut scratch = NeighborScratch::new(g.num_nodes());
        for u in g.node_ids() {
            prop_assert_eq!(
                hare::fingerprint::profile_of(&g, u, delta, &mut scratch),
                hare::fingerprint::profile_of_separate(&g, u, delta, &mut scratch)
            );
        }
    }

    /// Tentpole differential #2: fused profiles equal brute-force
    /// enumeration attribution on every node.
    #[test]
    fn fused_profiles_match_enumeration(g in arb::graph(8, 40, 60), delta in 0i64..80) {
        let profiles = hare::node_profiles(&g, delta, 1);
        let oracle = enumerate_profiles(&g, delta);
        prop_assert_eq!(profiles.len(), oracle.len());
        for (p, expect) in profiles.iter().zip(oracle.iter()) {
            prop_assert_eq!(&p.as_vector(), expect);
        }
    }

    /// Sum invariant: every profile column sums to multiplicity × the
    /// global count — 1× stars, 2× pairs, 3× triangles.
    #[test]
    fn column_sums_are_multiplicity_times_global(g in arb::graph(8, 40, 60), delta in 0i64..80) {
        let profiles = hare::node_profiles(&g, delta, 1);
        let sum = hare::fingerprint::profile_sum(&profiles);
        let global = hare::count_motifs(&g, delta);
        for m in Motif::all() {
            prop_assert_eq!(
                sum.get(m),
                global.get(m) * hare::fingerprint::attribution_multiplicity(m)
            );
        }
    }

    /// Node-permutation equivariance: relabelling nodes by an arbitrary
    /// permutation permutes the profile table and changes nothing else.
    #[test]
    fn profiles_are_permutation_equivariant(g in arb::graph(8, 40, 60), delta in 0i64..80, seed in 0u64..u64::MAX) {
        let n = g.num_nodes();
        prop_assume!(n > 0);
        // Fisher–Yates driven by a splitmix64 stream (same scheme as
        // tests/property_invariants.rs).
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut b = GraphBuilder::new();
        for e in g.edges() {
            b.add_edge(perm[e.src as usize], perm[e.dst as usize], e.t);
        }
        let permuted = b.build();
        let original = hare::node_profiles(&g, delta, 1);
        let relabelled = hare::node_profiles(&permuted, delta, 1);
        for u in 0..n {
            match relabelled.get(perm[u] as usize) {
                Some(p) => prop_assert_eq!(&original[u], p),
                // perm[u] can exceed the permuted graph's node range when
                // the highest relabelled id lands on an isolated node
                // (the builder sizes the graph by the max id *seen*);
                // such a node necessarily has an empty profile.
                None => prop_assert!(original[u].is_empty()),
            }
        }
    }

    /// The parallel HARE drivers (dense and sparse) are bit-identical
    /// across thread counts, and the sparse collection is exactly the
    /// nonzero rows of the dense table.
    #[test]
    fn parallel_drivers_are_thread_count_invariant(g in arb::graph(8, 40, 60), delta in 0i64..80, threads in 2usize..5) {
        let dense1 = hare::node_profiles(&g, delta, 1);
        let densen = hare::node_profiles(&g, delta, threads);
        prop_assert_eq!(&dense1, &densen);
        let sparse1 = hare::NodeProfiles::compute(&g, delta, 1);
        let sparsen = hare::NodeProfiles::compute(&g, delta, threads);
        prop_assert_eq!(&sparse1, &sparsen);
        let nonzero: Vec<(u32, hare::NodeProfile)> = dense1
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(u, p)| (u as u32, *p))
            .collect();
        let got: Vec<(u32, hare::NodeProfile)> =
            sparse1.iter().map(|(u, p)| (u, *p)).collect();
        prop_assert_eq!(got, nonzero);
    }

    /// Top-k and z-score rankings are deterministic: recomputation from
    /// scratch (any thread count) yields identical rankings, and motif
    /// ranking ties always resolve by ascending node id.
    #[test]
    fn rankings_are_deterministic(g in arb::graph(8, 40, 60), delta in 0i64..80, k in 1usize..6, threads in 2usize..5) {
        let a = hare::NodeProfiles::compute(&g, delta, 1);
        let b = hare::NodeProfiles::compute(&g, delta, threads);
        for m in Motif::all() {
            let ra = hare::top_k_nodes(&a, m, k);
            prop_assert_eq!(&ra, &hare::top_k_nodes(&b, m, k));
            for w in ra.windows(2) {
                prop_assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0), "{:?}", ra);
            }
        }
        let da = hare::ProfileDistribution::compute(&a);
        let db = hare::ProfileDistribution::compute(&b);
        prop_assert_eq!(
            hare::rank_by_zscore(&a, &da, k),
            hare::rank_by_zscore(&b, &db, k)
        );
    }
}

/// The Fig. 1 toy, end to end: the single M65 pair instance at δ=10 is
/// attributed to v_d (3) and v_e (4) and to nobody else, and the paper's
/// named M63 star instance sits on its center v_a (0).
#[test]
fn fig1_toy_attribution_is_exact() {
    let g = paper_fig1_toy();
    let profiles = hare::node_profiles(&g, 10, 1);
    let m65 = hare::motif::m(6, 5);
    let attributed: Vec<(usize, u64)> = profiles
        .iter()
        .enumerate()
        .filter(|(_, p)| p.get(m65) > 0)
        .map(|(u, p)| (u, p.get(m65)))
        .collect();
    assert_eq!(attributed, vec![(3, 1), (4, 1)]);
    assert!(profiles[0].get(hare::motif::m(6, 3)) >= 1);
    // And the oracle agrees cell-for-cell.
    let oracle = enumerate_profiles(&g, 10);
    for (u, p) in profiles.iter().enumerate() {
        assert_eq!(p.as_vector(), oracle[u], "node {u}");
    }
}

/// Duplicate-timestamp bursts (many ties) and self-loop-heavy raw
/// streams still reconcile the three paths on a fixed adversarial case.
#[test]
fn tied_timestamps_and_self_loops_reconcile() {
    let mut b = GraphBuilder::new();
    // Every edge at t=5: all orderings decided by input position.
    for (s, d) in [(0, 1), (1, 0), (0, 1), (2, 2), (1, 2), (2, 0), (0, 2)] {
        b.add_edge(s, d, 5);
    }
    let g = b.build();
    for delta in [0, 1, 10] {
        let fused = hare::node_profiles(&g, delta, 1);
        let oracle = enumerate_profiles(&g, delta);
        let mut scratch = NeighborScratch::new(g.num_nodes());
        for u in g.node_ids() {
            assert_eq!(
                fused[u as usize].as_vector(),
                oracle[u as usize],
                "node {u} delta {delta}"
            );
            assert_eq!(
                fused[u as usize],
                hare::fingerprint::profile_of_separate(&g, u, delta, &mut scratch),
                "node {u} delta {delta}"
            );
        }
    }
}
