//! Probe-seam determinism: every engine must produce results
//! bit-identical to its unprobed entry point, for both the zero-cost
//! [`NoopProbe`] and the wall-clock [`WallClockProbe`]. The probe only
//! *observes* phase boundaries — this battery pins that it can never
//! participate in them.

use hare::sample::{SampleConfig, SampledCounter};
use hare::stream_sample::{StreamSampleConfig, StreamingEstimator};
use hare::{
    count_motifs, count_motifs_ooc, count_motifs_ooc_probed, count_motifs_probed, Hare,
    InMemorySource, MotifCategory, NoopProbe, OocConfig, Phase, Probe, WallClockProbe,
};
use temporal_graph::gen::{erdos_renyi_temporal, hub_burst, paper_fig1_toy};

fn graphs() -> Vec<(temporal_graph::TemporalGraph, i64)> {
    vec![
        (paper_fig1_toy(), 10),
        (erdos_renyi_temporal(40, 900, 2_000, 11), 300),
        (hub_burst(30, 1_200, 9_000, 5), 700),
    ]
}

#[test]
fn fused_counts_are_probe_invariant() {
    for (g, delta) in graphs() {
        let want = count_motifs(&g, delta);
        let noop = count_motifs_probed(&g, delta, &NoopProbe);
        assert_eq!(noop.matrix, want.matrix);
        let timing = WallClockProbe::new();
        let timed = count_motifs_probed(&g, delta, &timing);
        assert_eq!(timed.matrix, want.matrix);
        assert_eq!(timed.star, want.star);
        assert_eq!(timed.pair, want.pair);
        assert_eq!(timed.tri, want.tri);
        // The timing probe actually saw the kernel's phases.
        let phases: Vec<Phase> = timing.snapshot().iter().map(|t| t.phase).collect();
        assert!(phases.contains(&Phase::Scan), "{phases:?}");
        assert!(phases.contains(&Phase::Fold), "{phases:?}");
    }
}

#[test]
fn hare_counts_are_probe_invariant() {
    for (g, delta) in graphs() {
        for threads in [1, 4] {
            let engine = Hare::with_threads(threads);
            let want = engine.count_all(&g, delta);
            let timing = WallClockProbe::new();
            let timed = engine.count_all_probed(&g, delta, &timing);
            assert_eq!(timed.matrix, want.matrix, "{threads} threads");
            assert!(timing.snapshot().iter().any(|t| t.phase == Phase::Scan));
            for only in [
                None,
                Some(MotifCategory::Pair),
                Some(MotifCategory::Star),
                Some(MotifCategory::Triangle),
            ] {
                let mx = engine.count_matrix(&g, delta, only);
                assert_eq!(
                    engine.count_matrix_probed(&g, delta, only, &NoopProbe),
                    mx,
                    "{only:?}"
                );
                assert_eq!(
                    engine.count_matrix_probed(&g, delta, only, &WallClockProbe::new()),
                    mx,
                    "{only:?}"
                );
            }
        }
    }
}

#[test]
fn sampled_estimates_are_probe_invariant() {
    for (g, delta) in graphs() {
        for (prob, threads) in [(0.4, 1), (0.4, 4), (1.0, 1)] {
            let counter = SampledCounter::new(SampleConfig {
                prob,
                threads,
                ..SampleConfig::default()
            });
            let want = counter.count(&g, delta);
            assert_eq!(counter.count_probed(&g, delta, &NoopProbe), want);
            let timing = WallClockProbe::new();
            assert_eq!(counter.count_probed(&g, delta, &timing), want);
            let phases: Vec<Phase> = timing.snapshot().iter().map(|t| t.phase).collect();
            assert!(phases.contains(&Phase::Scan), "{phases:?}");
            assert!(phases.contains(&Phase::Summarise), "{phases:?}");
        }
    }
}

#[test]
fn ooc_counts_are_probe_invariant() {
    for (g, delta) in graphs() {
        let src = InMemorySource::from_graph(&g);
        let full = g.num_edges() * hare::ooc::LANE_BYTES_PER_EDGE;
        for budget in [full / 5 + 1, 2 * full + 1] {
            let config = OocConfig::new(delta, budget);
            let (want, want_stats) = count_motifs_ooc(&src, config).unwrap();
            let timing = WallClockProbe::new();
            let (timed, stats) = count_motifs_ooc_probed(&src, config, &timing).unwrap();
            assert_eq!(timed.matrix, want.matrix);
            assert_eq!(stats.chunks, want_stats.chunks);
            assert_eq!(
                stats.peak_resident_lane_bytes,
                want_stats.peak_resident_lane_bytes
            );
            let phases: Vec<Phase> = timing.snapshot().iter().map(|t| t.phase).collect();
            assert!(phases.contains(&Phase::ChunkLoad), "{phases:?}");
            assert!(phases.contains(&Phase::Scan), "{phases:?}");
        }
    }
}

#[test]
fn stream_ticks_are_probe_invariant() {
    let g = hub_burst(25, 2_000, 20_000, 13);
    // Tight budget so eviction (the Evict phase) actually engages.
    for budget in [1 << 12, 1 << 20] {
        let cfg = StreamSampleConfig::new(500, 5_000, budget);
        let mut plain = StreamingEstimator::new(cfg.clone());
        let mut probed = StreamingEstimator::new(cfg);
        let timing = WallClockProbe::new();
        for (i, e) in g.edges().iter().enumerate() {
            plain.push(e.src, e.dst, e.t).unwrap();
            probed.push_probed(e.src, e.dst, e.t, &timing).unwrap();
            if i % 500 == 0 {
                assert_eq!(probed.estimates_probed(&timing), plain.estimates(), "{i}");
            }
        }
        plain.flush();
        probed.flush_probed(&timing);
        assert_eq!(probed.estimates(), plain.estimates());
        assert!(timing
            .snapshot()
            .iter()
            .any(|t| t.phase == Phase::Summarise));
    }
}

#[test]
fn custom_probe_observes_without_perturbing() {
    // A third-party Probe implementation (count-only, no clock): the
    // seam is a public trait, not a closed enum of blessed impls.
    #[derive(Default)]
    struct CountingProbe(std::cell::Cell<u64>);
    impl Probe for CountingProbe {
        fn span<R>(&self, _phase: Phase, f: impl FnOnce() -> R) -> R {
            self.0.set(self.0.get() + 1);
            f()
        }
    }
    let (g, delta) = (paper_fig1_toy(), 10);
    let probe = CountingProbe::default();
    let counts = count_motifs_probed(&g, delta, &probe);
    assert_eq!(counts.matrix, count_motifs(&g, delta).matrix);
    assert!(probe.0.get() >= 2, "scan + fold spans expected");
}
