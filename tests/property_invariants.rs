//! Property-based tests (proptest) of the core counting invariants, over
//! arbitrary small temporal graphs.

use proptest::prelude::*;

use hare::motif::{Motif, MotifCategory};
use temporal_graph::{GraphBuilder, TemporalGraph};

/// Arbitrary small temporal multigraph: up to `max_edges` edges over up
/// to 8 nodes with timestamps in a narrow range (dense ties on purpose).
fn graph_strategy(max_edges: usize) -> impl Strategy<Value = TemporalGraph> {
    prop::collection::vec((0u32..8, 0u32..8, 0i64..60), 0..max_edges).prop_map(|triples| {
        let mut b = GraphBuilder::new();
        for (s, d, t) in triples {
            b.add_edge(s, d, t); // self-loops silently dropped
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The central oracle property: FAST equals explicit enumeration on
    /// every graph and δ.
    #[test]
    fn fast_matches_enumeration(g in graph_strategy(40), delta in 0i64..80) {
        let fast = hare::count_motifs(&g, delta);
        let oracle = hare_baselines::enumerate_all(&g, delta);
        prop_assert_eq!(fast.matrix, oracle);
    }

    /// EX equals FAST on every graph and δ.
    #[test]
    fn ex_matches_fast(g in graph_strategy(40), delta in 0i64..80) {
        let fast = hare::count_motifs(&g, delta);
        let ex = hare_baselines::ex::count_all(&g, delta);
        prop_assert_eq!(fast.matrix, ex);
    }

    /// HARE with any small thread count equals sequential FAST.
    #[test]
    fn hare_matches_fast(g in graph_strategy(40), delta in 0i64..80, threads in 1usize..4) {
        let fast = hare::count_motifs(&g, delta);
        let par = hare::Hare::with_threads(threads).count_all(&g, delta);
        prop_assert_eq!(fast.matrix, par.matrix);
    }

    /// Total counts are monotone non-decreasing in δ.
    #[test]
    fn monotone_in_delta(g in graph_strategy(30), d1 in 0i64..40, d2 in 0i64..40) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let a = hare::count_motifs(&g, lo).total();
        let b = hare::count_motifs(&g, hi).total();
        prop_assert!(a <= b);
    }

    /// Relabelling nodes permutes nothing in the canonical grid.
    #[test]
    fn node_relabelling_invariance(g in graph_strategy(30), delta in 0i64..60, shift in 1u32..7) {
        let n = g.num_nodes() as u32;
        prop_assume!(n > 0);
        let mut b = GraphBuilder::new();
        for e in g.edges() {
            b.add_edge((e.src + shift) % n.max(1), (e.dst + shift) % n.max(1), e.t);
        }
        let relabelled = b.build();
        // Cyclic shifts can create self-loops ((src+s)%n == (dst+s)%n only
        // if src==dst, which the builder already dropped) — safe.
        let a = hare::count_motifs(&g, delta);
        let c = hare::count_motifs(&relabelled, delta);
        prop_assert_eq!(a.matrix, c.matrix);
    }

    /// Relabelling nodes by an *arbitrary* permutation (not just a cyclic
    /// shift) changes nothing in the canonical grid — this is the
    /// sensitive probe for layout/ordering bugs in the SoA event arena
    /// (packed `other<<1|dir` lanes, bloom signatures, pair-slot lookup),
    /// all of which are keyed by node id.
    #[test]
    fn node_permutation_invariance(g in graph_strategy(40), delta in 0i64..80, seed in 0u64..u64::MAX) {
        let n = g.num_nodes();
        prop_assume!(n > 0);
        // Fisher–Yates driven by a splitmix64 stream seeded from the
        // proptest input.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut b = GraphBuilder::new();
        for e in g.edges() {
            b.add_edge(perm[e.src as usize], perm[e.dst as usize], e.t);
        }
        let permuted = b.build();
        prop_assert_eq!(
            hare::count_motifs(&g, delta).matrix,
            hare::count_motifs(&permuted, delta).matrix
        );
        // The parallel engine must agree on the permuted ids too.
        prop_assert_eq!(
            hare::count_motifs(&permuted, delta).matrix,
            hare::Hare::with_threads(2).count_all(&permuted, delta).matrix
        );
    }

    /// Shifting all timestamps by a constant changes nothing.
    #[test]
    fn time_shift_invariance(g in graph_strategy(30), delta in 0i64..60, shift in -1000i64..1000) {
        let mut b = GraphBuilder::new();
        for e in g.edges() {
            b.add_edge(e.src, e.dst, e.t + shift);
        }
        let shifted = b.build();
        prop_assert_eq!(
            hare::count_motifs(&g, delta).matrix,
            hare::count_motifs(&shifted, delta).matrix
        );
    }

    /// Raw FAST-Tri counters: the three isomorphic cells of each class
    /// agree, and the total is divisible by 3.
    #[test]
    fn tri_counter_class_balance(g in graph_strategy(40), delta in 0i64..80) {
        let tri = hare::fast_tri::fast_tri(&g, delta);
        prop_assert!(tri.class_cells_balanced());
        prop_assert_eq!(tri.total() % 3, 0);
    }

    /// Raw FAST-Star pair counters: mirror cells balance (each pair
    /// instance is seen once from each endpoint).
    #[test]
    fn pair_counter_mirror_balance(g in graph_strategy(40), delta in 0i64..80) {
        let (_, pair) = hare::fast_star::fast_star(&g, delta);
        prop_assert!(pair.mirror_cells_balanced());
        prop_assert_eq!(pair.total() % 2, 0);
    }

    /// Dedicated pair/triangle counters agree with the full pipeline.
    #[test]
    fn specialised_equal_full(g in graph_strategy(40), delta in 0i64..80) {
        let full = hare::count_motifs(&g, delta);
        let pairs = hare::count_pair_motifs(&g, delta);
        let tris = hare::count_triangle_motifs(&g, delta);
        for mo in Motif::all() {
            match mo.category() {
                MotifCategory::Pair => prop_assert_eq!(full.get(mo), pairs.get(mo)),
                MotifCategory::Triangle => prop_assert_eq!(full.get(mo), tris.get(mo)),
                MotifCategory::Star => {}
            }
        }
    }

    /// Streaming equals batch on arbitrary in-order streams: raw triples
    /// with duplicate timestamps and self-loops are pushed through
    /// `StreamingCounter` (self-loops rejected edge-by-edge, exactly as
    /// the batch builder drops them), and the final counts must equal a
    /// batch FAST run over the accepted edges. Previously this was only
    /// asserted on fixed fixtures.
    #[test]
    fn streaming_equals_batch_on_random_streams(
        triples in temporal_graph::gen::arb::raw_triples(8, 40, 30),
        delta in 0i64..40,
    ) {
        let mut arrivals = triples;
        arrivals.sort_by_key(|&(_, _, t)| t);
        let mut sc = hare::streaming::StreamingCounter::new(delta);
        let mut b = GraphBuilder::new();
        for (s, d, t) in arrivals {
            match sc.push(s, d, t) {
                Ok(()) => b.add_edge(s, d, t),
                Err(hare::streaming::StreamError::SelfLoop) => {
                    prop_assert_eq!(s, d);
                }
                Err(e) => return Err(TestCaseError::fail(format!("in-order push rejected: {e}"))),
            }
        }
        let g = b.build();
        prop_assert_eq!(sc.num_edges(), g.num_edges() as u64);
        prop_assert_eq!(sc.counts(), hare::count_motifs(&g, delta).matrix);
    }

    /// Duplicating every edge (same timestamps) scales pair counts by
    /// predictable combinatorics only through enumeration equality —
    /// cheap sanity that multi-edges don't break anything.
    #[test]
    fn edge_duplication_consistency(g in graph_strategy(20), delta in 0i64..40) {
        let mut b = GraphBuilder::new();
        for e in g.edges() {
            b.add_edge(e.src, e.dst, e.t);
            b.add_edge(e.src, e.dst, e.t);
        }
        let doubled = b.build();
        let fast = hare::count_motifs(&doubled, delta);
        let oracle = hare_baselines::enumerate_all(&doubled, delta);
        prop_assert_eq!(fast.matrix, oracle);
    }
}
