//! HARE determinism and equivalence guarantees: every thread count,
//! degree threshold and scheduling discipline must produce counts
//! bit-identical to the sequential algorithms — the property that makes
//! the framework "natively parallel" (§IV.C: no data dependency between
//! threads).

use hare::{DegreeThreshold, Hare, HareConfig, Scheduling};
use temporal_graph::gen::{hub_burst, GenConfig};

fn skewed_graph(seed: u64) -> temporal_graph::TemporalGraph {
    GenConfig {
        nodes: 120,
        edges: 3_000,
        time_span: 40_000,
        zipf_exponent: 1.05,
        seed,
        ..GenConfig::default()
    }
    .generate()
}

#[test]
fn thread_count_never_changes_results() {
    let g = skewed_graph(1);
    let delta = 2_000;
    let reference = hare::count_motifs(&g, delta);
    for threads in [1, 2, 3, 4, 8] {
        let counts = Hare::with_threads(threads).count_all(&g, delta);
        assert_eq!(counts.matrix, reference.matrix, "{threads} threads");
        // Raw counters match too — merging is exact, not just the fold.
        assert_eq!(counts.star, reference.star, "{threads} threads");
        assert_eq!(counts.pair, reference.pair, "{threads} threads");
        assert_eq!(counts.tri, reference.tri, "{threads} threads");
    }
}

#[test]
fn threshold_policy_never_changes_results() {
    let g = hub_burst(60, 4_000, 50_000, 3);
    let delta = 3_000;
    let reference = hare::count_motifs(&g, delta);
    for thrd in [
        DegreeThreshold::TopK(1),
        DegreeThreshold::TopK(20),
        DegreeThreshold::Fixed(0), // every node goes intra-node
        DegreeThreshold::Fixed(10),
        DegreeThreshold::Fixed(usize::MAX),
        DegreeThreshold::Disabled,
    ] {
        let engine = Hare::new(HareConfig {
            num_threads: 4,
            degree_threshold: thrd,
            min_task_events: 8,
            min_task_nodes: 4,
            ..HareConfig::default()
        });
        assert_eq!(
            engine.count_all(&g, delta).matrix,
            reference.matrix,
            "{thrd:?}"
        );
    }
}

#[test]
fn scheduling_discipline_never_changes_results() {
    let g = skewed_graph(2);
    let delta = 1_000;
    let reference = hare::count_motifs(&g, delta);
    for sched in [Scheduling::Dynamic, Scheduling::Static] {
        let engine = Hare::new(HareConfig {
            num_threads: 3,
            scheduling: sched,
            ..HareConfig::default()
        });
        assert_eq!(
            engine.count_all(&g, delta).matrix,
            reference.matrix,
            "{sched:?}"
        );
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let g = skewed_graph(3);
    let engine = Hare::with_threads(4);
    let first = engine.count_all(&g, 1_500);
    for _ in 0..3 {
        assert_eq!(engine.count_all(&g, 1_500).matrix, first.matrix);
    }
}

#[test]
fn parallel_pair_and_tri_match_sequential() {
    let g = skewed_graph(4);
    let delta = 1_000;
    let engine = Hare::with_threads(4);
    assert_eq!(
        engine.count_pair(&g, delta),
        hare::fast_pair::fast_pair(&g, delta)
    );
    assert_eq!(
        engine.count_tri(&g, delta),
        hare::fast_tri::fast_tri(&g, delta)
    );
}

#[test]
fn parallel_ex_and_sampling_baselines_are_thread_stable() {
    let g = skewed_graph(5);
    let delta = 1_000;
    let ex1 = hare_baselines::ex::count_all_parallel(&g, delta, 1);
    for threads in [2, 4] {
        assert_eq!(
            hare_baselines::ex::count_all_parallel(&g, delta, threads),
            ex1
        );
    }
    let cfg = hare_baselines::EwsConfig {
        edge_prob: 0.5,
        seed: 7,
    };
    let e1 = hare_baselines::ews_estimate_parallel(&g, delta, &cfg, 1);
    let e4 = hare_baselines::ews_estimate_parallel(&g, delta, &cfg, 4);
    for (a, b) in e1.iter().zip(e4.iter()) {
        assert!((a.1 - b.1).abs() < 1e-9);
    }
}
