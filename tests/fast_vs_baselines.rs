//! Cross-validation of every exact algorithm in the workspace: FAST,
//! HARE, EX, BT, raw enumeration and 2SCENT must agree on the counts of
//! every motif class over a grid of workloads, seeds and δ values.
//!
//! This is the repository's central correctness argument: five
//! independently implemented algorithms (different data structures,
//! different traversal orders, different counting disciplines) producing
//! the same 36 numbers on every workload.

use hare::motif::{m, Motif, MotifCategory};
use temporal_graph::gen::{erdos_renyi_temporal, hub_burst, GenConfig};
use temporal_graph::TemporalGraph;

fn workloads() -> Vec<(String, TemporalGraph)> {
    let mut out = Vec::new();
    for seed in 0..3 {
        out.push((
            format!("er-{seed}"),
            erdos_renyi_temporal(20, 300, 500, seed),
        ));
    }
    out.push((
        "conversations".into(),
        GenConfig {
            nodes: 40,
            edges: 700,
            time_span: 20_000,
            seed: 5,
            ..GenConfig::default()
        }
        .generate(),
    ));
    out.push(("hub".into(), hub_burst(30, 500, 4_000, 7)));
    out.push((
        "dense-ties".into(),
        // Many simultaneous timestamps stress the tie-breaking rules.
        erdos_renyi_temporal(10, 200, 20, 11),
    ));
    out
}

#[test]
fn all_exact_algorithms_agree() {
    for (name, g) in workloads() {
        for delta in [0, 10, 120, 5_000] {
            let oracle = hare_baselines::enumerate_all(&g, delta);
            let fast = hare::count_motifs(&g, delta);
            assert_eq!(
                oracle, fast.matrix,
                "oracle vs FAST on {name} (delta {delta})"
            );
            let ex = hare_baselines::ex::count_all(&g, delta);
            assert_eq!(oracle, ex, "oracle vs EX on {name} (delta {delta})");
            let bt = hare_baselines::bt_count_all(&g, delta);
            assert_eq!(oracle, bt, "oracle vs BT on {name} (delta {delta})");
        }
    }
}

#[test]
fn specialised_variants_agree_with_full_count() {
    for (name, g) in workloads() {
        let delta = 300;
        let full = hare::count_motifs(&g, delta);
        let pair_only = hare::count_pair_motifs(&g, delta);
        let tri_only = hare::count_triangle_motifs(&g, delta);
        let bt_pairs = hare_baselines::bt_count_pairs(&g, delta);
        let ex_pairs = hare_baselines::ex::count_pairs(&g, delta);
        let ex_tris = hare_baselines::ex::count_triangles(&g, delta);
        for mo in Motif::all() {
            match mo.category() {
                MotifCategory::Pair => {
                    assert_eq!(full.get(mo), pair_only.get(mo), "{name} {mo} fast-pair");
                    assert_eq!(full.get(mo), bt_pairs.get(mo), "{name} {mo} bt-pair");
                    assert_eq!(full.get(mo), ex_pairs.get(mo), "{name} {mo} ex-pair");
                }
                MotifCategory::Triangle => {
                    assert_eq!(full.get(mo), tri_only.get(mo), "{name} {mo} fast-tri");
                    assert_eq!(full.get(mo), ex_tris.get(mo), "{name} {mo} ex-tri");
                }
                MotifCategory::Star => {}
            }
        }
    }
}

#[test]
fn two_scent_matches_m26_everywhere() {
    for (name, g) in workloads() {
        for delta in [10, 300, 5_000] {
            let fast = hare::count_motifs(&g, delta);
            assert_eq!(
                hare_baselines::two_scent_tri(&g, delta),
                fast.get(m(2, 6)),
                "{name} delta={delta}"
            );
        }
    }
}

#[test]
fn calibrated_datasets_validate_end_to_end() {
    // One representative of each family through the full pipeline at a
    // small scale (keeps CI fast while touching the realistic shapes).
    for name in ["CollegeMsg", "Bitcoinalpha", "WikiTalk"] {
        let spec = hare_datasets::by_name(name).unwrap();
        let scale = spec.scale_for(8_000);
        let g = spec.generate(scale);
        let delta = 600;
        let fast = hare::count_motifs(&g, delta);
        let ex = hare_baselines::ex::count_all(&g, delta);
        assert_eq!(fast.matrix, ex, "{name}");
        assert!(fast.total() > 0, "{name} produced an empty workload");
    }
}

#[test]
fn counts_monotone_in_delta() {
    let (_, g) = &workloads()[0];
    let mut prev = 0u64;
    for delta in [0, 5, 25, 100, 1_000, 100_000] {
        let total = hare::count_motifs(g, delta).total();
        assert!(total >= prev, "total decreased at delta={delta}");
        prev = total;
    }
}
