//! Differential suite for the sliding-window engine: at **every tick**
//! (after every processed arrival and every explicit watermark advance),
//! `WindowedCounter` counts must be bit-identical to a from-scratch
//! batch FAST run restricted to the live window.
//!
//! The oracle exploits one engine guarantee: the set of *processed*
//! edges is always exactly the accepted arrivals with `t <= watermark`
//! (the reorder buffer releases an edge only once no earlier timestamp
//! can still arrive). So the live window at watermark `T` is simply the
//! accepted arrivals with `T - W <= t <= T`, rebuilt in arrival order —
//! the builder's stable sort then reproduces the engine's tie order.

use proptest::prelude::*;

use hare::counters::MotifMatrix;
use hare::streaming::StreamError;
use hare::windowed::WindowedCounter;
use temporal_graph::gen::arb;
use temporal_graph::{GraphBuilder, NodeId, Timestamp};

/// Batch FAST over the accepted arrivals (in arrival order) restricted
/// to `[wm - window, wm]`.
fn batch_live_window(
    accepted: &[(NodeId, NodeId, Timestamp)],
    delta: Timestamp,
    window: Timestamp,
    wm: Timestamp,
) -> MotifMatrix {
    let mut b = GraphBuilder::new();
    for &(s, d, t) in accepted {
        if t <= wm && wm - t <= window {
            b.add_edge(s, d, t);
        }
    }
    hare::count_motifs(&b.build(), delta).matrix
}

/// Push an arrival sequence through a windowed counter, asserting the
/// differential invariant after every push and once more after a final
/// flush. Self-loops are expected to be rejected; everything else must
/// be accepted. Returns the number of accepted edges.
fn check_stream(
    arrivals: &[(NodeId, NodeId, Timestamp)],
    delta: Timestamp,
    window: Timestamp,
    slack: Timestamp,
) -> Result<usize, TestCaseError> {
    let mut wc = WindowedCounter::with_slack(delta, window, slack);
    let mut accepted: Vec<(NodeId, NodeId, Timestamp)> = Vec::new();
    for &(s, d, t) in arrivals {
        match wc.push(s, d, t) {
            Ok(()) => accepted.push((s, d, t)),
            Err(StreamError::SelfLoop) => {
                prop_assert_eq!(s, d);
                continue;
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected rejection: {e}"))),
        }
        if let Some(wm) = wc.watermark() {
            prop_assert_eq!(wc.counts(), batch_live_window(&accepted, delta, window, wm));
        }
    }
    wc.flush();
    if let Some(wm) = wc.watermark() {
        prop_assert_eq!(wc.counts(), batch_live_window(&accepted, delta, window, wm));
    }
    Ok(accepted.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: in-order random streams (self-loops and
    /// duplicate edges included, heavy timestamp ties) match batch FAST
    /// over the live window at every tick, for arbitrary `W >= delta`.
    #[test]
    fn windowed_equals_batch_at_every_tick(
        triples in arb::raw_triples(8, 40, 60),
        (delta, window) in arb::delta_window(40, 50),
    ) {
        let mut arrivals = triples;
        arrivals.sort_by_key(|&(_, _, t)| t);
        check_stream(&arrivals, delta, window, 0)?;
    }

    /// Degenerate window `W == delta`: instances die the instant their
    /// span budget is exhausted.
    #[test]
    fn degenerate_window_equals_delta(
        triples in arb::raw_triples(6, 35, 40),
        delta in 0i64..30,
    ) {
        let mut arrivals = triples;
        arrivals.sort_by_key(|&(_, _, t)| t);
        check_stream(&arrivals, delta, delta, 0)?;
    }

    /// Burst timestamps: everything lands on a handful of instants, so
    /// ties dominate and whole cohorts expire together.
    #[test]
    fn burst_timestamps_match(
        triples in arb::raw_triples(6, 40, 4),
        (delta, window) in arb::delta_window(3, 4),
    ) {
        let mut arrivals = triples;
        arrivals.sort_by_key(|&(_, _, t)| t);
        check_stream(&arrivals, delta, window, 0)?;
    }

    /// Out-of-order arrival within the reorder slack: jitter each edge's
    /// arrival position by up to slack/2 in either direction. Every push
    /// must be accepted, and every tick must still match the batch run.
    #[test]
    fn reorder_slack_arrivals_match(
        rows in prop::collection::vec((0u32..8, 0u32..8, 0i64..60, 0i64..21), 1..40),
        (delta, window) in arb::delta_window(40, 50),
    ) {
        let slack = 20i64;
        // Arrival order = sorted by (t + jitter - slack/2); any two edges
        // then satisfy t_later >= t_earlier - slack, so acceptance is
        // guaranteed and the scenario never degenerates into rejections.
        let mut arrivals: Vec<(i64, (u32, u32, i64))> = rows
            .into_iter()
            .map(|(s, d, t, jitter)| (t + jitter - slack / 2, (s, d, t)))
            .collect();
        arrivals.sort_by_key(|&(key, _)| key);
        let stream: Vec<(u32, u32, i64)> = arrivals.into_iter().map(|(_, e)| e).collect();
        check_stream(&stream, delta, window, slack)?;
    }

    /// Explicit watermark advances interleaved with pushes: ticks driven
    /// by `advance_to` (including ones that empty the window entirely)
    /// match the batch run at the advanced watermark.
    #[test]
    fn advance_ticks_match(
        triples in arb::raw_triples(8, 30, 50),
        (delta, window) in arb::delta_window(30, 40),
        tick in 1i64..25,
    ) {
        let mut arrivals = triples;
        arrivals.retain(|&(s, d, _)| s != d);
        arrivals.sort_by_key(|&(_, _, t)| t);
        let mut wc = WindowedCounter::new(delta, window);
        let mut accepted: Vec<(u32, u32, i64)> = Vec::new();
        let mut boundary = tick;
        for &(s, d, t) in &arrivals {
            while boundary < t {
                wc.advance_to(boundary);
                prop_assert_eq!(
                    wc.counts(),
                    batch_live_window(&accepted, delta, window, boundary)
                );
                boundary += tick;
            }
            wc.push(s, d, t).unwrap();
            accepted.push((s, d, t));
        }
        // A final advance far past the stream must drain the window.
        let horizon = arrivals.last().map_or(window, |&(_, _, t)| t) + window + 1;
        wc.advance_to(horizon);
        prop_assert_eq!(wc.counts(), MotifMatrix::default());
        prop_assert_eq!(wc.live_edges(), 0);
    }
}

/// Fixed regression scenarios outside the proptest loop, pinning the
/// corner cases named in the issue.
mod fixed {
    use super::*;

    #[test]
    fn empty_stream_and_empty_window() {
        let mut wc = WindowedCounter::new(10, 10);
        assert_eq!(wc.counts(), MotifMatrix::default());
        assert_eq!(wc.watermark(), None);
        wc.advance_to(1_000);
        assert_eq!(wc.counts(), MotifMatrix::default());
        assert_eq!(wc.live_edges(), 0);
        // Pushing after a far advance still works.
        wc.push(0, 1, 1_000).unwrap();
        assert_eq!(wc.live_edges(), 1);
    }

    #[test]
    fn duplicate_edges_expire_as_a_cohort() {
        // Five copies of the same edge at the same instant, plus the two
        // edges that make them pair motifs; all expire together.
        let mut wc = WindowedCounter::new(10, 10);
        let mut accepted = Vec::new();
        for _ in 0..5 {
            wc.push(0, 1, 100).unwrap();
            accepted.push((0, 1, 100));
        }
        wc.push(1, 0, 105).unwrap();
        accepted.push((1, 0, 105));
        wc.push(0, 1, 108).unwrap();
        accepted.push((0, 1, 108));
        let wm = wc.watermark().unwrap();
        assert_eq!(wc.counts(), batch_live_window(&accepted, 10, 10, wm));
        assert!(wc.counts().total() > 0);
        wc.advance_to(111);
        assert_eq!(wc.counts(), batch_live_window(&accepted, 10, 10, 111));
        wc.advance_to(119);
        assert_eq!(wc.counts().total(), 0, "all first edges out of window");
    }

    #[test]
    fn paper_toy_graph_sliding_ticks() {
        let g = temporal_graph::gen::paper_fig1_toy();
        for (delta, window) in [(10, 10), (10, 15), (5, 20)] {
            let mut wc = WindowedCounter::new(delta, window);
            let mut accepted = Vec::new();
            for e in g.edges() {
                wc.push(e.src, e.dst, e.t).unwrap();
                accepted.push((e.src, e.dst, e.t));
                let wm = wc.watermark().unwrap();
                assert_eq!(
                    wc.counts(),
                    batch_live_window(&accepted, delta, window, wm),
                    "delta {delta} window {window} at t={wm}"
                );
            }
        }
    }

    #[test]
    fn late_arrival_beyond_slack_is_rejected_and_ignored() {
        let mut wc = WindowedCounter::with_slack(10, 100, 5);
        wc.push(0, 1, 50).unwrap();
        wc.push(1, 2, 60).unwrap();
        let err = wc.push(2, 0, 40).unwrap_err();
        assert!(matches!(err, StreamError::OutOfOrder { got: 40, last: 55 }));
        // The rejected edge left no trace: counts equal the batch run
        // over the two accepted edges.
        wc.flush();
        let accepted = [(0, 1, 50), (1, 2, 60)];
        assert_eq!(wc.counts(), batch_live_window(&accepted, 10, 100, 60));
        assert_eq!(wc.num_accepted(), 2);
    }
}
