//! The accuracy-vs-speed dial of the interval-sampling estimator
//! (`hare::sample`): sweep the window keep probability `p` on a
//! CollegeMsg-style workload and print, for each setting, the wall-clock
//! speedup over exact FAST, the mean relative error of the estimates,
//! and how often the 95% confidence intervals cover the true counts.
//!
//! ```text
//! cargo run --release -p hare-examples --example approx_tradeoff
//! ```

use hare::sample::{SampleConfig, SampledCounter};
use std::time::Instant;

fn main() {
    let spec = hare_datasets::by_name("CollegeMsg").expect("registry");
    let g = spec.generate(1);
    let delta = 600;
    println!(
        "CollegeMsg stand-in: {} nodes, {} edges; delta = {delta}s",
        g.num_nodes(),
        g.num_edges()
    );

    // Exact reference: the fused FAST scan.
    let reps = 20;
    let start = Instant::now();
    let mut exact = hare::count_motifs(&g, delta);
    for _ in 1..reps {
        exact = hare::count_motifs(&g, delta);
    }
    let exact_s = start.elapsed().as_secs_f64() / reps as f64;
    println!(
        "exact FAST: {:.2} ms, {} motif instances\n",
        exact_s * 1e3,
        exact.total()
    );

    println!(
        "{:>5} {:>10} {:>9} {:>13} {:>11} {:>13}",
        "p", "time", "speedup", "mean-rel-err", "95%-cover", "windows"
    );
    for prob in [0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0] {
        let counter = SampledCounter::new(SampleConfig {
            prob,
            ..SampleConfig::default()
        });
        let start = Instant::now();
        let mut est = counter.count(&g, delta);
        for _ in 1..reps {
            est = counter.count(&g, delta);
        }
        let secs = start.elapsed().as_secs_f64() / reps as f64;

        // Score error and CI coverage over several independent seeds —
        // one draw says little about an estimator.
        let seeds = 10;
        let (mut err, mut cover) = (0.0, 0.0);
        for seed in 0..seeds {
            let e = SampledCounter::new(SampleConfig {
                prob,
                seed,
                ..SampleConfig::default()
            })
            .count(&g, delta);
            err += e.mean_relative_error(&exact.matrix);
            cover += e.covered_fraction(&exact.matrix);
        }

        println!(
            "{:>5.2} {:>8.2}ms {:>8.2}x {:>13.3} {:>11.3} {:>8}/{}",
            prob,
            secs * 1e3,
            exact_s / secs,
            err / seeds as f64,
            cover / seeds as f64,
            est.windows_sampled,
            est.windows_total
        );
    }

    // The degenerate configuration is not an approximation at all.
    let exact_again = SampledCounter::new(SampleConfig {
        prob: 1.0,
        ..SampleConfig::default()
    })
    .count(&g, delta);
    assert_eq!(exact_again.as_exact(), Some(exact.matrix));
    println!("\np = 1.0 reproduced the exact counts bit-for-bit.");
}
