//! Anomaly detection with temporal motif fingerprints — one of the
//! applications motivating the paper (§I).
//!
//! A communication network runs normally for 30 days; on day 20 a fraud
//! ring starts "round-tripping" — rapid cyclic transfers a → b → c → a
//! that are individually unremarkable but create a burst of cyclic
//! triangle motifs (M26). We slide a one-day window over the stream,
//! compute each window's 36-motif fingerprint with HARE, and flag windows
//! whose fingerprint deviates from the trailing baseline.
//!
//! ```text
//! cargo run --release -p hare-examples --example anomaly_detection
//! ```

use hare::{Hare, Motif};
use temporal_graph::{GraphBuilder, TemporalGraph, Timestamp};

const DAY: Timestamp = 86_400;
const DAYS: i64 = 30;
const ANOMALY_DAY: i64 = 20;

/// Background traffic plus an injected fraud ring on `ANOMALY_DAY`.
fn build_stream() -> TemporalGraph {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut b = GraphBuilder::new();
    let users = 400u32;

    // Normal traffic: conversations between random users, ~2k edges/day.
    for day in 0..DAYS {
        for _ in 0..2_000 {
            let u = rng.gen_range(0..users);
            let mut v = rng.gen_range(0..users);
            while v == u {
                v = rng.gen_range(0..users);
            }
            let t = day * DAY + rng.gen_range(0..DAY);
            b.add_edge(u, v, t);
            if rng.gen_bool(0.3) {
                b.add_edge(v, u, t + rng.gen_range(1..600));
            }
        }
    }

    // The fraud ring: 3-node cycles completed within minutes, all day.
    let ring = [17u32, 211, 342];
    for k in 0..300 {
        let t0 = ANOMALY_DAY * DAY + k * 250;
        b.add_edge(ring[0], ring[1], t0);
        b.add_edge(ring[1], ring[2], t0 + 60);
        b.add_edge(ring[2], ring[0], t0 + 140);
    }
    b.build()
}

fn main() {
    let delta = 600; // 10-minute motif window, as in the paper's tables
    let graph = build_stream();
    let engine = Hare::with_threads(0);
    let m26 = Motif::new(2, 6);

    println!("day | total 3-edge motifs | cyclic triangles (M26) | z-score | verdict");
    println!("{:-<78}", "");

    let edges = graph.edges();
    let mut history: Vec<f64> = Vec::new();
    for day in 0..DAYS {
        // Slice the chronological edge array to this day's window.
        let lo = edges.partition_point(|e| e.t < day * DAY);
        let hi = edges.partition_point(|e| e.t < (day + 1) * DAY);
        let mut b = GraphBuilder::with_capacity(hi - lo).compact_ids(true);
        b.extend(edges[lo..hi].iter().copied());
        let window = b.build();

        let counts = engine.count_all(&window, delta);
        let cycles = counts.get(m26) as f64;

        // Trailing z-score against the history so far (needs >= 5 days).
        let verdict = if history.len() >= 5 {
            let mean = history.iter().sum::<f64>() / history.len() as f64;
            let var =
                history.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / history.len() as f64;
            let z = (cycles - mean) / var.sqrt().max(1.0);
            let flag = if z > 4.0 { "<<< ANOMALY" } else { "" };
            format!("{z:>7.2} | {flag}")
        } else {
            "   warm-up".to_string()
        };
        println!(
            "{day:>3} | {:>19} | {:>22} | {verdict}",
            counts.total(),
            cycles as u64
        );
        history.push(cycles);
    }

    println!(
        "\nThe ring on day {ANOMALY_DAY} is invisible in edge volume (~300 of ~5k edges)\n\
         but lights up the M26 cell of the motif fingerprint."
    );
}
