//! Demonstration of the HARE hierarchical parallel framework (§IV.C):
//! how thread count, the degree threshold `thrd` and the scheduling
//! discipline affect wall-clock time on a hub-dominated graph.
//!
//! ```text
//! cargo run --release -p hare-examples --example parallel_scaling
//! ```

use hare::{DegreeThreshold, Hare, HareConfig, Scheduling};
use std::time::Instant;

fn main() {
    // A WikiTalk-style workload: a handful of hub nodes carry most of
    // the work (cf. the paper's Fig. 9).
    let spec = hare_datasets::by_name("WikiTalk").expect("registry");
    let scale = 16;
    let g = spec.generate(scale);
    let delta = 600;
    println!(
        "WikiTalk stand-in at 1/{scale}: {} nodes, {} edges; delta = {delta}s",
        g.num_nodes(),
        g.num_edges()
    );
    let top = temporal_graph::stats::top_k_degrees(&g, 5);
    println!("top-5 degrees: {top:?} (default thrd = min of top-20)");

    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    println!(
        "\n{:<34} {:>9} {:>9}",
        "configuration",
        "1 thread",
        format!("{cores} threads")
    );

    let mut reference = None;
    for (name, thrd, sched) in [
        (
            "hierarchical (paper default)",
            DegreeThreshold::TopK(20),
            Scheduling::Dynamic,
        ),
        (
            "inter-node only (dynamic)",
            DegreeThreshold::Disabled,
            Scheduling::Dynamic,
        ),
        (
            "inter-node only (static)",
            DegreeThreshold::Disabled,
            Scheduling::Static,
        ),
    ] {
        print!("{name:<34}");
        for threads in [1, cores] {
            let engine = Hare::new(HareConfig {
                num_threads: threads,
                degree_threshold: thrd,
                scheduling: sched,
                ..HareConfig::default()
            });
            let start = Instant::now();
            let counts = engine.count_all(&g, delta);
            let secs = start.elapsed().as_secs_f64();
            print!(" {:>8.2}s", secs);
            // Every configuration must produce identical counts.
            match &reference {
                None => reference = Some(counts.matrix),
                Some(r) => assert_eq!(*r, counts.matrix),
            }
        }
        println!();
    }

    println!(
        "\nall configurations produce bit-identical counts; the hierarchical\n\
         schedule wins when hubs would otherwise serialise the computation."
    );
}
