//! Online anomaly detection with the sliding-window engine.
//!
//! The `anomaly_detection` example rebuilds a one-day graph and recounts
//! it from scratch for every window — fine offline, wasteful online.
//! This version consumes the same fraud-ring stream **once**, through
//! `WindowedCounter` with a one-day window: each edge is counted on
//! arrival and retired on expiry, and at every day boundary we read off
//! the live window's motif fingerprint in O(1) extra work. The day-20
//! burst of cyclic transfers (a → b → c → a) again lights up the M26
//! cell while staying invisible in raw edge volume.
//!
//! ```text
//! cargo run --release -p hare-examples --example windowed_anomaly
//! ```

use hare::windowed::WindowedCounter;
use hare::Motif;
use temporal_graph::Timestamp;

const DAY: Timestamp = 86_400;
const DAYS: i64 = 30;
const ANOMALY_DAY: i64 = 20;

/// Background traffic plus an injected fraud ring on `ANOMALY_DAY`,
/// emitted in chronological order (the shape a real feed would have).
fn build_stream() -> Vec<(u32, u32, Timestamp)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let users = 400u32;
    let mut edges: Vec<(u32, u32, Timestamp)> = Vec::new();

    // Normal traffic: conversations between random users, ~2k edges/day.
    for day in 0..DAYS {
        for _ in 0..2_000 {
            let u = rng.gen_range(0..users);
            let mut v = rng.gen_range(0..users);
            while v == u {
                v = rng.gen_range(0..users);
            }
            let t = day * DAY + rng.gen_range(0..DAY);
            edges.push((u, v, t));
            if rng.gen_bool(0.3) {
                edges.push((v, u, t + rng.gen_range(1..600)));
            }
        }
    }

    // The fraud ring: 3-node cycles completed within minutes, all day.
    let ring = [17u32, 211, 342];
    for k in 0..300 {
        let t0 = ANOMALY_DAY * DAY + k * 250;
        edges.push((ring[0], ring[1], t0));
        edges.push((ring[1], ring[2], t0 + 60));
        edges.push((ring[2], ring[0], t0 + 140));
    }
    edges.sort_by_key(|&(_, _, t)| t);
    edges
}

fn main() {
    let delta = 600; // 10-minute motif window, as in the paper's tables
    let m26 = Motif::new(2, 6);
    let stream = build_stream();

    // One-day sliding window; a little slack would absorb feed jitter
    // (the synthetic stream is pre-sorted, so 0 is enough here).
    let mut wc = WindowedCounter::new(delta, DAY);

    println!("day | total 3-edge motifs | cyclic triangles (M26) | z-score | verdict");
    println!("{:-<78}", "");

    let mut history: Vec<f64> = Vec::new();
    let mut next = stream.iter().peekable();
    for day in 0..DAYS {
        let boundary = (day + 1) * DAY;
        while let Some(&&(u, v, t)) = next.peek() {
            if t >= boundary {
                break;
            }
            wc.push(u, v, t).expect("chronological stream");
            next.next();
        }
        // Tick: snap the window to exactly this day's end and read the
        // live fingerprint (no recount — arrival/expiry already paid).
        wc.advance_to(boundary - 1);
        let counts = wc.counts();
        let cycles = counts.get(m26) as f64;

        // Trailing z-score against the history so far (needs >= 5 days).
        let verdict = if history.len() >= 5 {
            let mean = history.iter().sum::<f64>() / history.len() as f64;
            let var =
                history.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / history.len() as f64;
            let z = (cycles - mean) / var.sqrt().max(1.0);
            let flag = if z > 4.0 { "<<< ANOMALY" } else { "" };
            format!("{z:>7.2} | {flag}")
        } else {
            "   warm-up".to_string()
        };
        println!(
            "{day:>3} | {:>19} | {:>22} | {verdict}",
            counts.total(),
            cycles as u64
        );
        history.push(cycles);
    }

    println!(
        "\nSame verdicts as the batch-recount example, but the stream was\n\
         consumed once: {} edges in, one O(d^delta) update per arrival and\n\
         per expiry, never more than one day of history in memory.",
        stream.len()
    );
}
