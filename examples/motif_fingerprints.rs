//! Network comparison via motif fingerprints — the "local structure"
//! application behind motif-based network embeddings (§I of the paper:
//! motifs capture local high-order structures that sampling methods
//! fail to preserve).
//!
//! Two levels of the same signature:
//!
//! 1. **Graph fingerprints** — each graph's normalised 36-dimensional
//!    motif distribution, recovered here from the per-node profile
//!    table via the attribution sum invariant (column sum = 1×/2×/3×
//!    the global count). Graphs of the same workload family cluster
//!    together even at different sizes.
//! 2. **Node profiles** — the per-node rows themselves
//!    ([`hare::NodeProfiles`]), ranked by a single motif
//!    ([`hare::top_k_nodes`]) and by z-score anomaly against the
//!    population distribution ([`hare::rank_by_zscore`]).
//!
//! ```text
//! cargo run --release -p hare-examples --example motif_fingerprints
//! ```

use hare::{Motif, NodeProfiles, ProfileDistribution};

/// Normalised 36-dim motif distribution, derived from the node-profile
/// table: dividing each profile column's sum by its attribution
/// multiplicity (1 star / 2 pair / 3 triangle) recovers the global
/// count, so the fingerprint falls out of one per-node pass.
fn fingerprint(profiles: &NodeProfiles) -> Vec<f64> {
    let mut sum = [0u64; 36];
    for (_, p) in profiles.iter() {
        for (s, c) in sum.iter_mut().zip(p.as_vector()) {
            *s += c;
        }
    }
    let global: Vec<u64> = Motif::all()
        .zip(sum)
        .map(|(m, s)| s / hare::fingerprint::attribution_multiplicity(m))
        .collect();
    let total = global.iter().sum::<u64>().max(1) as f64;
    global.iter().map(|&c| c as f64 / total).collect()
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

fn main() {
    let delta = 600;
    // Two datasets from each of three families, at different scales.
    let picks = [
        ("Email-Eu", 4),
        ("CollegeMsg", 1),
        ("Bitcoinotc", 1),
        ("Bitcoinalpha", 1),
        ("WikiTalk", 120),
        ("AskUbuntu", 16),
    ];

    println!("computing 36-motif fingerprints (delta = {delta}s) ...");
    let mut names = Vec::new();
    let mut prints = Vec::new();
    let mut college = None;
    for (name, scale) in picks {
        let spec = hare_datasets::by_name(name).expect("dataset");
        let g = spec.generate(scale);
        let profiles = NodeProfiles::compute(&g, delta, 0);
        println!(
            "  {name:<14} 1/{scale:<4} {:>8} edges  {:>6}/{} participating nodes",
            g.num_edges(),
            profiles.len(),
            g.num_nodes()
        );
        names.push(name);
        prints.push(fingerprint(&profiles));
        if name == "CollegeMsg" {
            college = Some(profiles);
        }
    }

    println!("\npairwise cosine similarity of motif fingerprints:");
    print!("{:<14}", "");
    for n in &names {
        print!("{n:>14}");
    }
    println!();
    for (i, a) in prints.iter().enumerate() {
        print!("{:<14}", names[i]);
        for b in &prints {
            print!("{:>14.3}", cosine(a, b));
        }
        println!();
    }

    // Same-family pairs should be closer than cross-family pairs.
    let fam = |i: usize, j: usize| cosine(&prints[i], &prints[j]);
    println!(
        "\nsame-family similarity:  messaging {:.3}, transaction {:.3}",
        fam(0, 1),
        fam(2, 3)
    );
    println!(
        "cross-family similarity: messaging-vs-transaction {:.3}, talk-vs-forum {:.3}",
        fam(0, 2),
        fam(4, 5)
    );

    // Drill into one graph: which nodes carry the structure? Rank by a
    // single motif (here M66, the back-and-forth pair burst) and by
    // z-score anomaly across all 36 dimensions.
    let profiles = college.expect("CollegeMsg profiled above");
    let m66 = hare::motif::m(6, 6);
    println!("\nCollegeMsg per-node drill-down (delta = {delta}s):");
    println!("  top nodes by {m66}:");
    for (node, count) in hare::top_k_nodes(&profiles, m66, 5) {
        println!("    node {node:>5}  {count:>8} instances");
    }
    let dist = ProfileDistribution::compute(&profiles);
    println!("  most anomalous profiles (L2 norm of 36-dim z-score):");
    for (node, score) in hare::rank_by_zscore(&profiles, &dist, 5) {
        println!("    node {node:>5}  score {score:>10.2}");
    }
}
