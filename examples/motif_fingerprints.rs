//! Network comparison via motif fingerprints — the "local structure"
//! application behind motif-based network embeddings (§I of the paper:
//! motifs capture local high-order structures that sampling methods
//! fail to preserve).
//!
//! We generate stand-ins for several of the paper's datasets, compute
//! each graph's normalised 36-dimensional motif distribution, and print
//! the pairwise cosine similarities: graphs of the same workload family
//! (messaging vs transaction vs talk pages) cluster together even at
//! different sizes — the motif fingerprint is a scale-free structural
//! signature.
//!
//! ```text
//! cargo run --release -p hare-examples --example motif_fingerprints
//! ```

use hare::{Hare, Motif};

fn fingerprint(g: &temporal_graph::TemporalGraph, delta: i64) -> Vec<f64> {
    let counts = Hare::with_threads(0).count_all(g, delta);
    let total = counts.total().max(1) as f64;
    Motif::all().map(|m| counts.get(m) as f64 / total).collect()
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

fn main() {
    let delta = 600;
    // Two datasets from each of three families, at different scales.
    let picks = [
        ("Email-Eu", 4),
        ("CollegeMsg", 1),
        ("Bitcoinotc", 1),
        ("Bitcoinalpha", 1),
        ("WikiTalk", 120),
        ("AskUbuntu", 16),
    ];

    println!("computing 36-motif fingerprints (delta = {delta}s) ...");
    let mut names = Vec::new();
    let mut prints = Vec::new();
    for (name, scale) in picks {
        let spec = hare_datasets::by_name(name).expect("dataset");
        let g = spec.generate(scale);
        println!("  {name:<14} 1/{scale:<4} {:>8} edges", g.num_edges());
        names.push(name);
        prints.push(fingerprint(&g, delta));
    }

    println!("\npairwise cosine similarity of motif fingerprints:");
    print!("{:<14}", "");
    for n in &names {
        print!("{n:>14}");
    }
    println!();
    for (i, a) in prints.iter().enumerate() {
        print!("{:<14}", names[i]);
        for b in &prints {
            print!("{:>14.3}", cosine(a, b));
        }
        println!();
    }

    // Same-family pairs should be closer than cross-family pairs.
    let fam = |i: usize, j: usize| cosine(&prints[i], &prints[j]);
    println!(
        "\nsame-family similarity:  messaging {:.3}, transaction {:.3}",
        fam(0, 1),
        fam(2, 3)
    );
    println!(
        "cross-family similarity: messaging-vs-transaction {:.3}, talk-vs-forum {:.3}",
        fam(0, 2),
        fam(4, 5)
    );
}
