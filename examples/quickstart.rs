//! Quickstart: build a temporal graph, count all 36 δ-temporal motifs,
//! and inspect the results — in under a minute.
//!
//! ```text
//! cargo run --release -p hare-examples --example quickstart [path/to/edges.txt]
//! ```
//!
//! With a path argument the graph is loaded from a SNAP-style text file
//! (`src dst timestamp` per line); without one, the paper's Fig. 1 toy
//! graph is used.

use hare::{count_motifs, Hare, Motif, MotifCategory};
use temporal_graph::io::{load_graph, LoadOptions};

fn main() {
    let delta = 10; // seconds — the δ used throughout the paper's Fig. 1
    let graph = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading {path} ...");
            load_graph(&path, &LoadOptions::default()).unwrap_or_else(|e| {
                eprintln!("failed to load {path}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            println!("no input file given — using the paper's Fig. 1 toy graph");
            temporal_graph::gen::paper_fig1_toy()
        }
    };

    println!(
        "graph: {} nodes, {} temporal edges, time span {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.time_span()
    );

    // Sequential FAST: the right choice for small graphs.
    let counts = count_motifs(&graph, delta);
    println!("\nmotif count matrix (M_ij as laid out in the paper's Fig. 2):");
    println!("{}", counts.matrix);

    // Category roll-ups.
    for (name, cat) in [
        ("pair (2-node)", MotifCategory::Pair),
        ("star", MotifCategory::Star),
        ("triangle", MotifCategory::Triangle),
    ] {
        println!(
            "{name:>15} motifs: {:>8} instances",
            counts.matrix.category_total(cat)
        );
    }

    // Individual motifs are addressed by grid position.
    let m65 = Motif::new(6, 5);
    println!(
        "\ncount of {m65} (the 2-node ping-pong): {}",
        counts.get(m65)
    );

    // The parallel engine produces bit-identical results.
    let parallel = Hare::with_threads(0).count_all(&graph, delta);
    assert_eq!(parallel.matrix, counts.matrix);
    println!("parallel HARE result verified identical.");
}
