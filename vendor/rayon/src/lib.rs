//! Offline stand-in for the subset of the `rayon` API this workspace
//! uses (see `vendor/README.md`).
//!
//! Unlike most shims this one is genuinely parallel: `map` fans its
//! items out over `std::thread::scope` workers that pull from a shared
//! queue (dynamic scheduling, like rayon's work stealing at chunk
//! granularity). The one semantic simplification is that `map` is eager
//! rather than lazy — every pipeline in this workspace is
//! `source.map(heavy_work).reduce(..)/collect()`, where eager evaluation
//! is observationally identical.

#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::sync::Mutex;

thread_local! {
    /// Thread count installed by the innermost [`ThreadPool::install`].
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The number of worker threads parallel operations will use on this
/// thread (set by [`ThreadPool::install`], defaulting to all cores).
#[must_use]
pub fn current_num_threads() -> usize {
    let n = CURRENT_THREADS.with(Cell::get);
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Error building a thread pool. The shim's pools cannot actually fail
/// to build; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (all cores).
    #[must_use]
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the worker count; `0` means one worker per available core.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A scoped execution context carrying a thread-count setting. Workers
/// are spawned per parallel operation (scoped threads), not kept alive —
/// adequate for the coarse-grained pipelines in this workspace.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing every parallel
    /// operation it performs.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(self.num_threads));
        let guard = RestoreThreads(prev);
        let r = f();
        drop(guard);
        r
    }

    /// This pool's worker count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

struct RestoreThreads(usize);

impl Drop for RestoreThreads {
    fn drop(&mut self) {
        CURRENT_THREADS.with(|c| c.set(self.0));
    }
}

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let inherited = current_num_threads();
    if inherited <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        // Propagate the installed thread count into the spawned worker so
        // parallel operations nested under `join` keep honouring it
        // (thread-locals don't cross thread boundaries by themselves).
        let hb = s.spawn(move || {
            CURRENT_THREADS.with(|c| c.set(inherited));
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// A materialised parallel iterator: holds its items and runs `map`
/// across scoped worker threads.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item across the current thread count, keeping
    /// item order. This is where the actual parallelism happens.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let inherited = current_num_threads();
        let threads = inherited.min(self.items.len()).max(1);
        if threads == 1 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        let queue = Mutex::new(self.items.into_iter().enumerate());
        let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        // Workers inherit the installed thread count so
                        // nested parallel calls keep honouring it.
                        CURRENT_THREADS.with(|c| c.set(inherited));
                        let mut local = Vec::new();
                        loop {
                            let next = queue.lock().expect("queue poisoned").next();
                            match next {
                                Some((i, item)) => local.push((i, f(item))),
                                None => break,
                            }
                        }
                        local
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("rayon worker panicked"))
                .collect()
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        ParIter {
            items: indexed.into_iter().map(|(_, r)| r).collect(),
        }
    }

    /// Fold all items into one value. `identity` seeds the fold and is
    /// also the result for an empty iterator.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Flatten nested containers, preserving order.
    pub fn flatten<U>(self) -> ParIter<U>
    where
        T: IntoIterator<Item = U>,
        U: Send,
    {
        ParIter {
            items: self.items.into_iter().flatten().collect(),
        }
    }

    /// Collect the items into any `FromIterator` container.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Containers convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing parallel iteration over slices (and anything derefing to a
/// slice, e.g. `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` items.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over non-overlapping chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order_and_runs_all() {
        let v: Vec<usize> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| v.par_iter().map(|&x| x * 2).collect());
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_reduce_matches_sequential() {
        let v: Vec<u64> = (1..=10_000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let total = pool.install(|| {
            v.par_chunks(97)
                .map(|c| c.iter().sum::<u64>())
                .reduce(|| 0, |a, b| a + b)
        });
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn map_actually_uses_multiple_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids: std::collections::HashSet<std::thread::ThreadId> = pool.install(|| {
            (0..64usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    std::thread::current().id()
                })
                .collect()
        });
        assert!(ids.len() > 1, "expected work on more than one thread");
    }

    #[test]
    fn join_returns_both() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(|| 1 + 1, || "x".repeat(3)));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn installed_thread_count_reaches_nested_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            // Inside a spawned `join` branch.
            let (_, seen_in_join) = join(|| (), current_num_threads);
            assert_eq!(seen_in_join, 3);
            // Inside `map` workers.
            let seen: Vec<usize> = (0..8usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect();
            assert!(seen.iter().all(|&n| n == 3), "{seen:?}");
        });
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_num_threads();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        assert_eq!(v.par_iter().map(|&x| x).reduce(|| 7, |a, b| a + b), 7);
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn flatten_preserves_order() {
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v.par_chunks(7).map(|c| c.to_vec()).flatten().collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
