//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (see `vendor/README.md` for why the real crate cannot be fetched).
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — a
//! high-quality, deterministic PRNG. Stream values differ from the real
//! `rand::rngs::StdRng` (which is ChaCha12); nothing in the workspace
//! depends on the exact stream, only on determinism and statistical
//! quality.

#![warn(rust_2018_idioms)]

/// Low-level source of randomness: 64-bit outputs.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator seedable from a `u64` for reproducibility.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard RNG: xoshiro256++ (deterministic,
    /// seedable, fast). API-compatible stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_u64(seed)
        }
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can describe a sampling domain for [`Rng::gen_range`]
/// (half-open and inclusive integer ranges). Mirrors `rand`'s blanket
/// impl structure so type inference flows from the range element type.
pub trait SampleRange<T> {
    /// Sample a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method,
/// with a rejection loop to remove the modulo bias).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span always fits in u64 for the types above (i128 span of two u64s
    // could exceed, but only i64/u64 full-width ranges do, which no caller
    // uses; handle it anyway by splitting).
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Lemire's widening-multiply method with rejection of the biased
        // low zone: reject while low64(x * span) < 2^64 mod span.
        let threshold = span64.wrapping_neg() % span64;
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (span64 as u128);
            if (m as u64) >= threshold {
                return m >> 64;
            }
        }
    } else {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// A random `f64` in `[0, 1)`.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types constructible from raw random bits (the shim's stand-in for the
/// `Standard` distribution).
pub trait FromRng {
    /// Produce a value from the generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17i64);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&y));
            let z = rng.gen_range(-50..50i32);
            assert!((-50..50).contains(&z));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
