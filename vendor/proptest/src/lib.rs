//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses (see `vendor/README.md`).
//!
//! A real randomized property-testing runner: each `proptest!` test
//! generates `ProptestConfig::cases` deterministic pseudo-random inputs
//! from its strategies and runs the body on each, honouring
//! `prop_assume!` rejections. Differences from the real crate: failing
//! inputs are not shrunk (the failure report carries the deterministic
//! attempt number, which reproduces the input exactly), and string
//! strategies treat the regex pattern as "any unicode string" rather
//! than compiling it.

#![warn(rust_2018_idioms)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the runner draws a fresh one.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with a message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A rejected (assumption-violating) case.
    #[must_use]
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// Deterministic RNG for one attempt of one named test.
#[must_use]
pub fn test_rng(test_name: &str, attempt: u64) -> StdRng {
    // FNV-1a over the test path, mixed with the attempt counter.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of pseudo-random values, mirroring `proptest::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String strategy from a regex-shaped pattern. The shim does not
/// compile the pattern; it generates arbitrary unicode strings (length
/// 0..=64), which satisfies the "any input" patterns used in this
/// workspace (e.g. `"\\PC*"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let len = rng.gen_range(0..=64usize);
        (0..len)
            .map(|_| match rng.gen_range(0..10u32) {
                // Mostly printable ASCII (covers digits, separators,
                // signs — the interesting structure for text parsers)…
                0..=6 => char::from(rng.gen_range(0x20..0x7fu8)),
                // …some whitespace/control…
                7 => ['\n', '\t', '\r', ' '][rng.gen_range(0..4usize)],
                // …and some unicode.
                _ => char::from_u32(rng.gen_range(0xA0..0x2FFFu32)).unwrap_or('¤'),
            })
            .collect()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s whose length falls in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generate vectors of values drawn from `element`, with a length
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left,
                        right
                    )));
                }
            }
        }
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left
                    )));
                }
            }
        }
    };
}

/// Reject the current input (draw a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Define property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts = u64::from(cfg.cases) * 20 + 100;
            while accepted < cfg.cases {
                attempt += 1;
                assert!(
                    attempt <= max_attempts,
                    "proptest: too many inputs rejected by prop_assume! \
                     ({accepted}/{} cases ran)",
                    cfg.cases
                );
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)), attempt);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed on attempt {attempt} \
                         (deterministic; rerun reproduces it):\n{msg}",
                        stringify!($name)
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3i64..9, y in 0u32..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_vecs(v in prop::collection::vec((0u64..10, 0i64..4), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 10);
                prop_assert!((0..4).contains(&b));
            }
        }

        #[test]
        fn prop_map_applies(s in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert!(s < 100);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn strings_generate(s in "\\PC*") {
            prop_assert!(s.chars().count() <= 64);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0usize..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::test_rng("t", 1);
        let mut b = crate::test_rng("t", 1);
        let s1 = (0u32..100).generate(&mut a);
        let s2 = (0u32..100).generate(&mut b);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "failed on attempt")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..2) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
