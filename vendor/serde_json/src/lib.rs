//! Offline stand-in for the subset of the `serde_json` API this
//! workspace uses: the [`Value`] tree, the [`Map`] object type, the
//! [`json!`] macro, and a small [`from_str`] parser so tests can check
//! emitted output (see `vendor/README.md`).
//!
//! Output is standard JSON. Differences from the real crate: objects
//! preserve insertion order (the real crate sorts keys unless the
//! `preserve_order` feature is on), and no serde `Serialize` bridging is
//! provided — values are built with [`json!`] / [`Value::from`].

#![warn(rust_2018_idioms)]

use std::fmt;

/// A JSON object: string keys to [`Value`]s, insertion-ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    #[must_use]
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert (or replace) a key. Returns the previous value, if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look a key up.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the object has no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value tree, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point.
    F64(f64),
}

impl Value {
    /// The value as `u64`, when it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, when it is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::I64(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64`, when it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            Value::Number(Number::F64(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a mutable object.
    #[must_use]
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Index into an object by key (`Value::Null` when absent or not an
    /// object), mirroring `serde_json`'s `Index` sugar.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Number(Number::U64(n as u64)) }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                if n < 0 {
                    Value::Number(Number::I64(n as i64))
                } else {
                    Value::Number(Number::U64(n as u64))
                }
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, usize);
impl_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::F64(n))
    }
}

impl From<f32> for Value {
    fn from(n: f32) -> Value {
        Value::Number(Number::F64(n as f64))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::U64(n)) => write!(f, "{n}"),
            Value::Number(Number::I64(n)) => write!(f, "{n}"),
            Value::Number(Number::F64(n)) => {
                if n.is_finite() {
                    // `{:?}` keeps a decimal point on whole floats
                    // ("1.0"), matching serde_json's rendering.
                    write!(f, "{n:?}")
                } else {
                    // serde_json renders non-finite floats as null.
                    write!(f, "null")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Error from [`from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // UTF-16 surrogate pair: a high surrogate must
                            // be followed by `\uXXXX` holding the low half.
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Four hex digits of a `\u` escape (cursor already past the `u`).
    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::from)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::from)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::from)
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Build a [`Value`] from a JSON-shaped literal, mirroring
/// `serde_json::json!`. Supports object/array literals with expression
/// values, nested literals, `null`, and trailing commas.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    // Object whose values are each a single token tree (covers nested
    // `{...}` / `[...]` literals and `null`, handled by recursion).
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $(map.insert($key.to_string(), $crate::json!($val));)*
        $crate::Value::Object(map)
    }};
    // Object with arbitrary expression values (`stats.num_nodes`,
    // `m.to_string()`, ...).
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $(map.insert($key.to_string(), $crate::Value::from($val));)*
        $crate::Value::Object(map)
    }};
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::json!($item)),*])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::Value::from($item)),*])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses() {
        let v = json!({
            "name": "hare",
            "count": 42u64,
            "ratio": 1.5f64,
            "neg": (-3i64),
            "ok": true,
            "items": [1u64, 2u64],
            "nested": {"a": null},
        });
        let text = v.to_string();
        let back = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["count"].as_u64(), Some(42));
        assert_eq!(back["ratio"].as_f64(), Some(1.5));
        assert_eq!(back["neg"].as_i64(), Some(-3));
        assert_eq!(back["items"][1].as_u64(), Some(2));
        assert_eq!(back["nested"]["a"], Value::Null);
        assert_eq!(back["missing"], Value::Null);
    }

    #[test]
    fn escapes_strings() {
        let v = json!({"s": "a\"b\\c\nd"});
        let text = v.to_string();
        assert_eq!(text, r#"{"s":"a\"b\\c\nd"}"#);
        assert_eq!(from_str(&text).unwrap()["s"].as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(json!(2.0f64).to_string(), "2.0");
        assert_eq!(json!(0.125f64).to_string(), "0.125");
    }

    #[test]
    fn expression_values_work() {
        let cells: Vec<Value> = (0..3u64).map(|i| json!({"i": i})).collect();
        let v = json!({"cells": cells, "n": 3usize});
        assert_eq!(v["cells"].as_array().unwrap().len(), 3);
        assert_eq!(v["cells"][2]["i"].as_u64(), Some(2));
    }

    #[test]
    fn parses_unicode_escapes_including_surrogate_pairs() {
        // BMP escape, then an astral char as a UTF-16 surrogate pair
        // (the form real serde_json and most emitters produce).
        let parsed = from_str(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("é😀"));
        assert!(from_str(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(from_str(r#""\ud83dx""#).is_err());
        assert!(from_str(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn parses_whitespace_and_literals() {
        let v = from_str(" { \"a\" : [ true , false , null ] } ").unwrap();
        assert_eq!(v["a"][0], Value::Bool(true));
        assert_eq!(v["a"][2], Value::Null);
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,2").is_err());
        assert!(from_str("12 34").is_err());
    }
}
