//! Offline stand-in for the subset of the `serde` API this workspace
//! uses: the `Serialize` / `Deserialize` marker traits and their derive
//! macros (see `vendor/README.md`).
//!
//! The workspace only *derives* these traits to mark types as
//! serialisable for downstream consumers; no code serialises through
//! them yet (JSON output goes through `serde_json::Value` directly), so
//! the traits carry no methods here.

#![warn(rust_2018_idioms)]

/// Marker for types that can be serialised.
pub trait Serialize {}

/// Marker for types that can be deserialised.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
