//! Derive macros for the offline `serde` stand-in: emit a marker-trait
//! impl for the annotated type (see `vendor/README.md`).

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the `struct`/`enum` the derive is attached to.
/// Only the simple shapes used in this workspace are supported: the
/// emitted impl carries no generics, so deriving on a generic type is a
/// compile error until this shim grows generics support.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive shim: expected a struct or enum");
}

/// Derive the `Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

/// Derive the `Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}
