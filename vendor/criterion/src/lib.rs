//! Offline stand-in for the subset of the `criterion` API this
//! workspace uses (see `vendor/README.md`).
//!
//! A real measuring harness, minus criterion's statistics machinery:
//! each benchmark runs a warm-up iteration and then `sample_size` timed
//! iterations, reporting min / mean / median wall-clock time per
//! iteration. Honors `--test` (one quick iteration per benchmark, as
//! `cargo test --benches` passes) and a name-filter positional argument
//! (as `cargo bench -- <filter>` passes).

#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the workspace benches use).
pub use std::hint::black_box;

/// Harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags criterion accepts that the shim can ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Criterion {
            test_mode,
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(&id.into_benchmark_id(), sample_size, f);
        self
    }

    fn run_one<F>(&self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.test_mode { 1 } else { sample_size };
        let mut bencher = Bencher {
            samples,
            warmup: !self.test_mode,
            times: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Finish the group (flush; a no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark id with an optional parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Id from a function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Conversion into the string id the shim reports under.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    warmup: bool,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, once per sample.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.warmup {
            black_box(f());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.times.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut sorted = self.times.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{id:<50} min {:>12} | mean {:>12} | median {:>12} | {} samples",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(median),
            sorted.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.3} µs", secs * 1e6)
    }
}

/// Declare a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_and_counts_samples() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
            default_sample_size: 20,
        };
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.bench_function("work", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // 5 samples + 1 warm-up.
        assert_eq!(runs, 6);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            default_sample_size: 20,
        };
        let mut runs = 0usize;
        c.bench_function("quick", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("match-me".to_string()),
            default_sample_size: 20,
        };
        let mut runs = 0usize;
        c.bench_function("other", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
        c.bench_function(BenchmarkId::new("match-me", 7), |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("HARE", 4).to_string(), "HARE/4");
    }
}
