//! Offline stand-in for the subset of the `rand_distr` API this workspace
//! uses: the [`Distribution`] trait and the [`Zipf`] distribution
//! (see `vendor/README.md`).

#![warn(rust_2018_idioms)]

use rand::RngCore;

/// Types that can sample values of `T` from a source of randomness,
/// mirroring `rand_distr::Distribution`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipfError(&'static str);

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid Zipf parameters: {}", self.0)
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf (zeta with finite support) distribution over ranks
/// `1..=n` with exponent `s`: `P(k) ∝ k^{-s}`.
///
/// Sampling uses rejection-inversion (Hörmann & Derflinger 1996), the
/// same algorithm as the real `rand_distr::Zipf` — O(1) per sample with
/// no per-rank table, so it scales to multi-million-node graphs.
/// Samples are returned as `f64` holding the integer rank, matching the
/// `rand_distr` 0.4 API.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: f64,
    s: f64,
    /// `H(1.5) - 1`, the upper bound of the inversion domain.
    h_x1: f64,
    /// `H(n + 0.5)`, the lower bound of the inversion domain.
    h_n: f64,
    /// Acceptance shortcut threshold.
    q: f64,
}

impl Zipf {
    /// Construct for `n` elements with exponent `s` (`n >= 1`, `s > 0`).
    pub fn new(n: u64, s: f64) -> Result<Zipf, ZipfError> {
        if n < 1 {
            return Err(ZipfError("n must be at least 1"));
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(ZipfError("exponent must be a positive finite number"));
        }
        let nf = n as f64;
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(nf + 0.5, s);
        let q = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Ok(Zipf {
            n: nf,
            s,
            h_x1,
            h_n,
            q,
        })
    }
}

/// `H(x) = ∫₁ˣ t^(-s) dt`, shifted so `H` is continuous at `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^(-s)`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical guard, as in the reference implementation.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `helper1(x) = ln(1 + x) / x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `helper2(x) = (e^x - 1) / x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            // Uniform in [h(n + 0.5), h(1.5) - 1).
            let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let u = self.h_n + u01 * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n);
            if k - x <= self.q || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, 1.0).is_ok());
    }

    #[test]
    fn samples_in_support() {
        let z = Zipf::new(100, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            let x = z.sample(&mut rng);
            assert_eq!(x, x.trunc());
            assert!((1.0..=100.0).contains(&x));
        }
    }

    #[test]
    fn rank_one_dominates() {
        // For s = 1, P(1) = 1/H_100 ≈ 0.193. Check the empirical rate.
        let z = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1.0).count();
        let rate = ones as f64 / n as f64;
        assert!((0.17..0.22).contains(&rate), "{rate}");
    }

    #[test]
    fn higher_exponent_concentrates_more() {
        let mut rng = StdRng::seed_from_u64(3);
        let share = |s: f64, rng: &mut StdRng| {
            let z = Zipf::new(1_000, s).unwrap();
            (0..20_000).filter(|_| z.sample(rng) <= 3.0).count()
        };
        let flat = share(0.8, &mut rng);
        let skewed = share(1.3, &mut rng);
        assert!(skewed > flat, "{skewed} vs {flat}");
    }

    #[test]
    fn n_equal_one_always_one() {
        let z = Zipf::new(1, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1.0);
        }
    }
}
